#include "community/detector.h"

#include <chrono>
#include <string>

#include "community/modularity.h"

namespace bikegraph::community {

namespace {

// Label propagation and Infomap have no native modularity; their backends
// leave it unset so the legacy wrappers (which have no field for it) don't
// pay an O(V+E) scan they would discard. The registry routes through these
// adapters so the unified surface still reports modularity for every
// algorithm.
Result<CommunityResult> LabelPropagationEntry(
    const graphdb::WeightedGraph& graph, const CommunityOptions& options) {
  BIKEGRAPH_ASSIGN_OR_RETURN(
      CommunityResult result,
      internal::DetectLabelPropagation(graph, options));
  result.modularity = Modularity(graph, result.partition);
  result.quality = result.modularity;
  return result;
}

Result<CommunityResult> InfomapEntry(const graphdb::WeightedGraph& graph,
                                     const CommunityOptions& options) {
  BIKEGRAPH_ASSIGN_OR_RETURN(CommunityResult result,
                             internal::DetectInfomap(graph, options));
  result.modularity = Modularity(graph, result.partition);
  return result;
}

// Registry order is AlgorithmId order; FindInfo indexes into it directly.
constexpr AlgorithmInfo kRegistry[] = {
    {AlgorithmId::kLouvain, "louvain",
     "multi-level modularity optimisation (Blondel et al. 2008; the "
     "paper's algorithm)",
     &internal::DetectLouvain, /*supports_warm_start=*/true},
    {AlgorithmId::kLabelPropagation, "label_propagation",
     "asynchronous weighted label propagation (Raghavan et al. 2007)",
     &LabelPropagationEntry, /*supports_warm_start=*/true},
    {AlgorithmId::kFastGreedy, "fast_greedy",
     "Clauset-Newman-Moore greedy modularity agglomeration",
     &internal::DetectFastGreedy, /*supports_warm_start=*/false},
    {AlgorithmId::kInfomap, "infomap",
     "two-level map-equation optimisation (Rosvall & Bergstrom 2008)",
     &InfomapEntry, /*supports_warm_start=*/false},
};

const AlgorithmInfo* FindInfo(AlgorithmId id) {
  const auto index = static_cast<int32_t>(id);
  if (index < 0 || index >= static_cast<int32_t>(std::size(kRegistry))) {
    return nullptr;
  }
  return &kRegistry[index];
}

/// Lowercases and drops separator characters, so "Label-Propagation",
/// "label_propagation" and "labelpropagation" all compare equal.
std::string NormalizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ' || c == '.') continue;
    out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                       : c);
  }
  return out;
}

}  // namespace

std::span<const AlgorithmInfo> AlgorithmRegistry() { return kRegistry; }

std::vector<AlgorithmId> ListAlgorithms() {
  std::vector<AlgorithmId> ids;
  ids.reserve(std::size(kRegistry));
  for (const AlgorithmInfo& info : kRegistry) ids.push_back(info.id);
  return ids;
}

std::string_view AlgorithmName(AlgorithmId id) {
  const AlgorithmInfo* info = FindInfo(id);
  return info ? info->name : std::string_view("unknown");
}

Result<AlgorithmId> ParseAlgorithm(std::string_view name) {
  const std::string key = NormalizeName(name);
  for (const AlgorithmInfo& info : kRegistry) {
    if (key == NormalizeName(info.name)) return info.id;
  }
  // Aliases seen in the paper, related tooling and earlier revisions.
  if (key == "lpa" || key == "labelprop") return AlgorithmId::kLabelPropagation;
  if (key == "cnm" || key == "greedy" || key == "fastgreedycnm") {
    return AlgorithmId::kFastGreedy;
  }
  if (key == "infomaplite" || key == "mapequation") return AlgorithmId::kInfomap;
  std::string known;
  for (const AlgorithmInfo& info : kRegistry) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  return Status::NotFound("unknown community algorithm '" +
                          std::string(name) + "'; known: " + known);
}

Result<CommunityResult> Detect(const graphdb::WeightedGraph& graph,
                               const DetectSpec& spec) {
  const AlgorithmInfo* info = FindInfo(spec.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "algorithm id " + std::to_string(static_cast<int32_t>(spec.algorithm)) +
        " is not in the registry");
  }
  const auto start = std::chrono::steady_clock::now();
  BIKEGRAPH_ASSIGN_OR_RETURN(CommunityResult result,
                             info->run(graph, spec.options));
  result.algorithm = spec.algorithm;
  result.wall_time_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace bikegraph::community
