#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bikegraph::community {

/// \brief A partition of graph nodes into communities.
///
/// `assignment[u]` is the community label of node u. Labels are dense
/// (0..community_count-1) after Renumber(), which all algorithms in this
/// module guarantee on their outputs.
struct Partition {
  std::vector<int32_t> assignment;

  size_t node_count() const { return assignment.size(); }

  /// Number of distinct labels (assumes dense labels).
  size_t CommunityCount() const;

  /// Remaps labels to dense 0-based ids ordered by first occurrence.
  void Renumber();

  /// Node count per community (dense labels required).
  std::vector<size_t> CommunitySizes() const;

  /// Members of each community, in node order.
  std::vector<std::vector<int32_t>> CommunityMembers() const;

  /// Everyone-in-one-community partition.
  static Partition Trivial(size_t n);
  /// Every-node-alone partition.
  static Partition Singletons(size_t n);
};

/// \brief Normalised Mutual Information between two partitions of the same
/// node set, in [0, 1]; 1 means identical up to relabelling. Used by the
/// algorithm-comparison benchmarks and stability tests.
double NormalizedMutualInformation(const Partition& a, const Partition& b);

}  // namespace bikegraph::community
