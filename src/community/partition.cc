#include "community/partition.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "core/checked_cast.h"

namespace bikegraph::community {

size_t Partition::CommunityCount() const {
  int32_t max_label = -1;
  for (int32_t c : assignment) {
    if (c > max_label) max_label = c;
  }
  return static_cast<size_t>(max_label + 1);
}

void Partition::Renumber() {
  // All algorithms in this module keep labels in [0, n), so a flat remap
  // table covers the common case without hashing; arbitrary labels (e.g.
  // hand-built partitions) fall back to a hash map.
  int32_t max_label = -1;
  bool flat_ok = true;
  for (int32_t c : assignment) {
    if (c < 0 || static_cast<size_t>(c) >= 4 * assignment.size() + 64) {
      flat_ok = false;
      break;
    }
    if (c > max_label) max_label = c;
  }
  if (flat_ok) {
    std::vector<int32_t> remap(static_cast<size_t>(max_label) + 1, -1);
    int32_t next = 0;
    for (int32_t& c : assignment) {
      if (remap[AsIndex(c)] < 0) remap[AsIndex(c)] = next++;
      c = remap[AsIndex(c)];
    }
    return;
  }
  std::unordered_map<int32_t, int32_t> remap;
  for (int32_t& c : assignment) {
    auto [it, inserted] = remap.emplace(c, static_cast<int32_t>(remap.size()));
    c = it->second;
    (void)inserted;
  }
}

std::vector<size_t> Partition::CommunitySizes() const {
  std::vector<size_t> sizes(CommunityCount(), 0);
  for (int32_t c : assignment) ++sizes[AsIndex(c)];
  return sizes;
}

std::vector<std::vector<int32_t>> Partition::CommunityMembers() const {
  std::vector<std::vector<int32_t>> members(CommunityCount());
  for (size_t u = 0; u < assignment.size(); ++u) {
    members[AsIndex(assignment[u])].push_back(static_cast<int32_t>(u));
  }
  return members;
}

Partition Partition::Trivial(size_t n) {
  Partition p;
  p.assignment.assign(n, 0);
  return p;
}

Partition Partition::Singletons(size_t n) {
  Partition p;
  p.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) p.assignment[i] = static_cast<int32_t>(i);
  return p;
}

double NormalizedMutualInformation(const Partition& a, const Partition& b) {
  const size_t n = a.assignment.size();
  if (n == 0 || b.assignment.size() != n) return 0.0;
  std::map<std::pair<int32_t, int32_t>, double> joint;
  std::unordered_map<int32_t, double> pa, pb;
  for (size_t i = 0; i < n; ++i) {
    joint[{a.assignment[i], b.assignment[i]}] += 1.0;
    pa[a.assignment[i]] += 1.0;
    pb[b.assignment[i]] += 1.0;
  }
  const double dn = static_cast<double>(n);
  double mi = 0.0;
  for (const auto& [key, count] : joint) {
    double pxy = count / dn;
    double px = pa[key.first] / dn;
    double py = pb[key.second] / dn;
    mi += pxy * std::log(pxy / (px * py));
  }
  double ha = 0.0, hb = 0.0;
  // lint: unordered-iter-ok: entropy sum is commutative; visit
  // order only perturbs FP rounding across stdlib implementations,
  // and NMI consumers compare against drift thresholds, not bits.
  for (const auto& [label, count] : pa) {
    double p = count / dn;
    ha -= p * std::log(p);
    (void)label;
  }
  // lint: unordered-iter-ok: same commutative entropy sum as the
  // pa loop above.
  for (const auto& [label, count] : pb) {
    double p = count / dn;
    hb -= p * std::log(p);
    (void)label;
  }
  if (ha <= 0.0 && hb <= 0.0) return 1.0;  // both trivial partitions
  double denom = std::sqrt(ha * hb);
  if (denom <= 0.0) return 0.0;
  return mi / denom;
}

}  // namespace bikegraph::community
