#include "stream/reorder_buffer.h"

#include <cassert>

namespace bikegraph::stream {

namespace {

/// Wheel memory is one bucket per horizon second; past ~48 days of
/// horizon that is >100 MB of (mostly empty) buckets, and the heap is
/// the honest choice.
constexpr int64_t kMaxWheelHorizonSeconds = int64_t{1} << 22;

}  // namespace

ReorderBuffer::ReorderBuffer(const ReorderBufferOptions& options)
    : options_(options) {
  if (options_.backend == ReorderBackend::kWheel &&
      options_.max_lateness_seconds > 0 &&
      options_.max_lateness_seconds <= kMaxWheelHorizonSeconds) {
    EnsureWheel();
  }
}

Status ReorderBuffer::Push(const TripEvent& event) {
  if (options_.max_lateness_seconds < 0) {
    return Status::InvalidArgument("max_lateness_seconds must be >= 0");
  }
  if (options_.backend == ReorderBackend::kWheel &&
      options_.max_lateness_seconds > kMaxWheelHorizonSeconds) {
    return Status::InvalidArgument(
        "max_lateness_seconds " +
        std::to_string(options_.max_lateness_seconds) +
        " exceeds the wheel backend's horizon limit (" +
        std::to_string(kMaxWheelHorizonSeconds) +
        "s); use ReorderBackend::kHeap for multi-month horizons");
  }
  if (flushed_) {
    return Status::FailedPrecondition(
        "ReorderBuffer was flushed (end of stream); no further events may "
        "be pushed");
  }
  const int64_t start = event.start_time.seconds_since_epoch();
  const int64_t cutoff = HorizonCutoff();
  if (start < cutoff) {
    if (options_.late_policy == LateEventPolicy::kDrop) {
      ++late_dropped_count_;
      return Status::OK();
    }
    return Status::FailedPrecondition(
        "trip event at " + event.start_time.ToString() + " is " +
        std::to_string(cutoff - start) +
        "s older than the reorder horizon (watermark " +
        CivilTime(watermark_seconds_).ToString() + " - max_lateness " +
        std::to_string(options_.max_lateness_seconds) + "s)");
  }
  if (options_.suppress_duplicates && event.rental_id != data::kInvalidId) {
    // Cap first, then insert: under a duplicate storm deeper than the
    // cap, the oldest-started ids are dropped to make room (see the
    // option's eviction contract), keeping the set — and its memory —
    // at most max_duplicate_ids entries.
    if (options_.max_duplicate_ids > 0 &&
        seen_ids_.size() >= options_.max_duplicate_ids &&
        seen_ids_.find(event.rental_id) == seen_ids_.end()) {
      while (seen_ids_.size() >= options_.max_duplicate_ids &&
             !seen_expiry_.empty()) {
        seen_ids_.erase(seen_expiry_.top().second);
        seen_expiry_.pop();
        ++duplicate_ids_evicted_;
      }
    }
    if (!seen_ids_.insert(event.rental_id).second) {
      ++duplicate_count_;
      return Status::OK();
    }
    seen_expiry_.emplace(start, event.rental_id);
    if (seen_ids_.size() > duplicate_ids_high_water_) {
      duplicate_ids_high_water_ = seen_ids_.size();
    }
  }
  if (start < watermark_seconds_) ++reordered_count_;
  const bool advances = start > watermark_seconds_;
  // Releasable on arrival? Only when the (possibly just-advanced)
  // watermark is already max_lateness past the start: every in-order
  // event in strict mode (max_lateness 0), or an exact-boundary straggler
  // otherwise.
  const bool releasable =
      start <= (advances ? start : watermark_seconds_) -
                   options_.max_lateness_seconds;
  if (advances) {
    watermark_seconds_ = start;
    if (!seen_expiry_.empty()) EvictExpiredIds(HorizonCutoff());
    if (options_.backend == ReorderBackend::kWheel && wheel_count_ > 0 &&
        watermark_seconds_ - drained_upto_ >=
            static_cast<int64_t>(primary_.size())) {
      // A watermark jump of a whole revolution would let a new second
      // collide with a not-yet-walked older one in the same bucket;
      // spilling the releasable seconds to the FIFO first keeps every
      // bucket single-second. Rare — ordinary advances stay well within
      // one revolution.
      DrainWheelUpTo(HorizonCutoff());
    }
  }
  if (releasable) {
    const bool pending_release =
        options_.backend == ReorderBackend::kWheel
            ? ready_head_ < ready_.size() || wheel_count_ > 0
            : !heap_.empty();
    if (!pending_release && !has_direct_) {
      direct_ = event;
      has_direct_ = true;
      return Status::OK();
    }
    if (has_direct_) {
      // Two releasable events pending: keep the smaller (start, rental
      // id) key in the direct slot so ties still release in rental-id
      // order — the direct slot is always popped first. The displaced
      // event is parked where it is immediately releasable. A new
      // arrival can never be *older* than the direct event (both are
      // >= the cutoff the direct event was <= of), so only the tie
      // case ever swaps.
      const int64_t direct_start = direct_.start_time.seconds_since_epoch();
      if (start < direct_start ||
          (start == direct_start && event.rental_id < direct_.rental_id)) {
        const TripEvent displaced = direct_;
        direct_ = event;
        if (options_.backend == ReorderBackend::kWheel) {
          ParkWheelReleasable(displaced);
        } else {
          PushToHeap(displaced);
        }
        return Status::OK();
      }
    }
    if (options_.backend == ReorderBackend::kWheel) {
      ParkWheelReleasable(event);
    } else {
      PushToHeap(event);
    }
    return Status::OK();
  }
  if (options_.backend == ReorderBackend::kWheel) {
    PushToWheel(event);
  } else {
    PushToHeap(event);
  }
  return Status::OK();
}

uint32_t ReorderBuffer::AllocSlot(const TripEvent& event) {
  if (free_slots_.empty()) {
    const auto slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(event);
    return slot;
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = event;
  return slot;
}

void ReorderBuffer::PushToHeap(const TripEvent& event) {
  heap_.push(HeapKey{event.start_time.seconds_since_epoch(),
                     event.rental_id, AllocSlot(event)});
}

void ReorderBuffer::EnsureWheel() {
  if (!primary_.empty()) return;
  // Held events span at most the max_lateness seconds in
  // (cutoff, watermark] plus the current walk second, so the next power
  // of two above that guarantees no two live seconds ever share a
  // bucket — each bucket is one second's events, sortable by rental id
  // alone. At least 64 so the wheel is whole occupancy words: a release
  // walk then maps one word's bits onto 64 consecutive seconds with no
  // mid-word wrap.
  size_t size = 64;
  const auto span =
      static_cast<uint64_t>(options_.max_lateness_seconds) + 2;
  while (size < span) size <<= 1;
  primary_.resize(size);
  occupancy_.assign(size / 64, 0);
  overflow_occupancy_.assign(size / 64, 0);
}

void ReorderBuffer::PushToWheel(const TripEvent& event) {
  EnsureWheel();
  const int64_t start = event.start_time.seconds_since_epoch();
  if (wheel_count_ == 0) {
    // Nothing is parked below this event, so fast-forward the walk
    // cursor: release walks never re-scan the gap. Never past the
    // event itself (it may already be releasable) and never past the
    // cutoff (future admissible arrivals start at or after it).
    const int64_t cutoff = HorizonCutoff();
    const int64_t upto = start - 1 < cutoff ? start - 1 : cutoff;
    if (upto > drained_upto_) drained_upto_ = upto;
  }
  assert(start > drained_upto_ && "wheel insert into a walked second");
  const size_t bucket = WheelBucket(start);
  const uint64_t bit = uint64_t{1} << (bucket & 63);
  if ((occupancy_[bucket >> 6] & bit) == 0) {
    occupancy_[bucket >> 6] |= bit;
    primary_[bucket] = event;
  } else {
    // Second event of this second: chain it onto the bucket's overflow
    // list (newest first; the gather restores arrival order).
    if (overflow_head_.empty()) {
      overflow_head_.assign(primary_.size(), kNilNode);
    }
    overflow_occupancy_[bucket >> 6] |= bit;
    uint32_t node;
    if (overflow_free_.empty()) {
      node = static_cast<uint32_t>(overflow_.size());
      overflow_.push_back(event);
      overflow_next_.push_back(overflow_head_[bucket]);
    } else {
      node = overflow_free_.back();
      overflow_free_.pop_back();
      overflow_[node] = event;
      overflow_next_[node] = overflow_head_[bucket];
    }
    overflow_head_[bucket] = node;
    ++overflow_count_;
  }
  ++wheel_count_;
}

void ReorderBuffer::GatherOverflowBucket(int64_t second, size_t bucket) {
  (void)second;  // one bucket == one second; only asserts need it
  // Arrival order is the primary slot first, then the chain reversed
  // (it is linked newest-first); the stable sort then makes rental id
  // the tie-break while same-id redeliveries keep arrival order.
  scratch_.clear();
  scratch_.push_back(primary_[bucket]);
  const size_t chain_begin = scratch_.size();
  for (uint32_t node = overflow_head_[bucket]; node != kNilNode;) {
    assert(overflow_[node].start_time.seconds_since_epoch() == second);
    scratch_.push_back(overflow_[node]);
    const uint32_t next = overflow_next_[node];
    overflow_free_.push_back(node);
    node = next;
  }
  overflow_count_ -= scratch_.size() - chain_begin;
  overflow_head_[bucket] = kNilNode;
  std::reverse(scratch_.begin() + static_cast<ptrdiff_t>(chain_begin),
               scratch_.end());
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const TripEvent& a, const TripEvent& b) {
                     return a.rental_id < b.rental_id;
                   });
  const uint64_t bit = uint64_t{1} << (bucket & 63);
  occupancy_[bucket >> 6] &= ~bit;
  overflow_occupancy_[bucket >> 6] &= ~bit;
}

void ReorderBuffer::DrainBucketToReady(int64_t second, size_t bucket) {
  const uint64_t bit = uint64_t{1} << (bucket & 63);
  if ((overflow_occupancy_[bucket >> 6] & bit) == 0) {
    ready_.push_back(primary_[bucket]);
    occupancy_[bucket >> 6] &= ~bit;
    --wheel_count_;
    return;
  }
  GatherOverflowBucket(second, bucket);
  for (const TripEvent& e : scratch_) ready_.push_back(e);
  wheel_count_ -= scratch_.size();
}

void ReorderBuffer::ParkWheelReleasable(const TripEvent& event) {
  if (event.start_time.seconds_since_epoch() > drained_upto_) {
    // Its second has not been walked yet: the normal bucket path keeps
    // it ordered against the other parked events for free.
    PushToWheel(event);
  } else {
    FifoInsertSorted(event);
  }
}

void ReorderBuffer::DrainWheelUpTo(int64_t upto) {
  if (upto <= drained_upto_) return;
  if (wheel_count_ == 0) {
    drained_upto_ = upto;
    return;
  }
  // Same walk as WalkWheel, but spilling into the ready FIFO instead of
  // a visitor — the big-jump and PopReady fallbacks.
  ForEachOccupiedSecond(occupancy_, primary_.size(), drained_upto_, upto,
                        [&](int64_t second, size_t bucket) {
                          DrainBucketToReady(second, bucket);
                          return wheel_count_ > 0;
                        });
  drained_upto_ = upto;
}

bool ReorderBuffer::DrainWheelNextSecond(int64_t limit) {
  bool found = false;
  ForEachOccupiedSecond(occupancy_, primary_.size(), drained_upto_, limit,
                        [&](int64_t second, size_t bucket) {
                          DrainBucketToReady(second, bucket);
                          drained_upto_ = second;
                          found = true;
                          return false;  // one second only
                        });
  if (!found) drained_upto_ = limit;
  return found;
}

bool ReorderBuffer::HasOccupiedSecondUpTo(int64_t limit) const {
  bool found = false;
  ForEachOccupiedSecond(occupancy_, primary_.size(), drained_upto_, limit,
                        [&](int64_t, size_t) {
                          found = true;
                          return false;
                        });
  return found;
}

void ReorderBuffer::FifoInsertSorted(const TripEvent& event) {
  const int64_t start = event.start_time.seconds_since_epoch();
  size_t pos = ready_.size();
  while (pos > ready_head_) {
    const TripEvent& prev = ready_[pos - 1];
    const int64_t prev_start = prev.start_time.seconds_since_epoch();
    if (prev_start < start ||
        (prev_start == start && prev.rental_id <= event.rental_id)) {
      break;
    }
    --pos;
  }
  ready_.insert(ready_.begin() + static_cast<ptrdiff_t>(pos), event);
}

void ReorderBuffer::AdvanceWatermark(CivilTime watermark) {
  const int64_t seconds = watermark.seconds_since_epoch();
  if (seconds <= watermark_seconds_) return;
  watermark_seconds_ = seconds;
  if (!seen_expiry_.empty()) EvictExpiredIds(HorizonCutoff());
  if (options_.backend == ReorderBackend::kWheel && wheel_count_ > 0 &&
      watermark_seconds_ - drained_upto_ >=
          static_cast<int64_t>(primary_.size())) {
    DrainWheelUpTo(HorizonCutoff());  // see Push: keeps buckets one-second
  }
}

void ReorderBuffer::Flush() {
  // Raises WheelReleaseLimit() to the watermark; the next release walk
  // or pop hands the remaining events out in order.
  flushed_ = true;
}

ReorderBufferState ReorderBuffer::ExportState() const {
  ReorderBufferState state;
  state.watermark_seconds = watermark_seconds_;
  state.flushed = flushed_;
  state.reordered_count = reordered_count_;
  state.late_dropped_count = late_dropped_count_;
  state.duplicate_count = duplicate_count_;
  state.released_count = released_count_;
  state.duplicate_ids_high_water = duplicate_ids_high_water_;
  state.duplicate_ids_evicted = duplicate_ids_evicted_;
  // The expiry heap and the id set always hold the same ids (inserts and
  // evictions touch both together), so draining a copy of the heap
  // exports the whole suppression state with the start times attached.
  state.seen.reserve(seen_expiry_.size());
  for (auto heap = seen_expiry_; !heap.empty(); heap.pop()) {
    state.seen.push_back(heap.top());
  }
  // Release order without disturbing the live buffer: flush a *copy* and
  // drain it. Checkpoints are seconds apart; the copy is the simple way
  // to reuse the one authoritative ordering implementation.
  ReorderBuffer drain(*this);
  drain.flushed_ = true;
  state.buffered.reserve(buffered_count());
  while (auto event = drain.PopReady()) {
    state.buffered.push_back(*event);
  }
  return state;
}

Status ReorderBuffer::RestoreState(const ReorderBufferState& state) {
  *this = ReorderBuffer(ReorderBufferOptions(options_));
  watermark_seconds_ = state.watermark_seconds;
  flushed_ = state.flushed;
  reordered_count_ = state.reordered_count;
  late_dropped_count_ = state.late_dropped_count;
  duplicate_count_ = state.duplicate_count;
  released_count_ = state.released_count;
  duplicate_ids_high_water_ = state.duplicate_ids_high_water;
  duplicate_ids_evicted_ = state.duplicate_ids_evicted;
  for (const auto& [start, id] : state.seen) {
    if (!seen_ids_.insert(id).second) {
      return Status::DataLoss(
          "checkpointed duplicate-suppression set repeats rental id " +
          std::to_string(id));
    }
    seen_expiry_.emplace(start, id);
  }
  // Re-park the held events. They are backend-neutral release order, so
  // ascending (start, rental id) — exactly what the wheel's
  // one-second-per-bucket invariant and the heap both accept.
  const int64_t cutoff = HorizonCutoff();
  int64_t prev_start = INT64_MIN;
  int64_t prev_id = INT64_MIN;
  for (const TripEvent& event : state.buffered) {
    const int64_t start = event.start_time.seconds_since_epoch();
    if (start < prev_start || (start == prev_start && event.rental_id < prev_id)) {
      return Status::DataLoss(
          "checkpointed reorder buffer is not in release order");
    }
    prev_start = start;
    prev_id = event.rental_id;
    if (start > watermark_seconds_ || start < cutoff) {
      return Status::DataLoss(
          "checkpointed buffered event at " + event.start_time.ToString() +
          " lies outside (horizon, watermark]");
    }
    if (options_.backend == ReorderBackend::kHeap) {
      PushToHeap(event);
    } else if (flushed_ || start <= cutoff) {
      // Already releasable: the FIFO drains before the bucket walk, and
      // the events arrive here in release order.
      ready_.push_back(event);
    } else {
      PushToWheel(event);
    }
  }
  return Status::OK();
}

void ReorderBuffer::EvictExpiredIds(int64_t cutoff) {
  // Ids whose event start has fallen strictly below the horizon can never
  // match an admissible redelivery (it would be late), so dropping them
  // keeps the set bounded by one horizon of events.
  while (!seen_expiry_.empty() && seen_expiry_.top().first < cutoff) {
    seen_ids_.erase(seen_expiry_.top().second);
    seen_expiry_.pop();
  }
}

}  // namespace bikegraph::stream
