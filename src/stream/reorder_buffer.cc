#include "stream/reorder_buffer.h"

namespace bikegraph::stream {

ReorderBuffer::ReorderBuffer(const ReorderBufferOptions& options)
    : options_(options) {}

Status ReorderBuffer::Push(const TripEvent& event) {
  if (options_.max_lateness_seconds < 0) {
    return Status::InvalidArgument("max_lateness_seconds must be >= 0");
  }
  if (flushed_) {
    return Status::FailedPrecondition(
        "ReorderBuffer was flushed (end of stream); no further events may "
        "be pushed");
  }
  const int64_t start = event.start_time.seconds_since_epoch();
  const int64_t cutoff = HorizonCutoff();
  if (start < cutoff) {
    if (options_.late_policy == LateEventPolicy::kDrop) {
      ++late_dropped_count_;
      return Status::OK();
    }
    return Status::FailedPrecondition(
        "trip event at " + event.start_time.ToString() + " is " +
        std::to_string(cutoff - start) +
        "s older than the reorder horizon (watermark " +
        CivilTime(watermark_seconds_).ToString() + " - max_lateness " +
        std::to_string(options_.max_lateness_seconds) + "s)");
  }
  if (options_.suppress_duplicates && event.rental_id != data::kInvalidId) {
    if (!seen_ids_.insert(event.rental_id).second) {
      ++duplicate_count_;
      return Status::OK();
    }
    seen_expiry_.emplace(start, event.rental_id);
  }
  if (start < watermark_seconds_) ++reordered_count_;
  const bool advances = start > watermark_seconds_;
  // Releasable on arrival? Only when the (possibly just-advanced)
  // watermark is already max_lateness past the start: every in-order
  // event in strict mode (max_lateness 0), or an exact-boundary straggler
  // otherwise. Such an event may bypass the heap when nothing could
  // precede it — the heap is empty (its top is always younger than the
  // cutoff by then) and the direct slot is free.
  const bool releasable =
      start <= (advances ? start : watermark_seconds_) -
                   options_.max_lateness_seconds;
  if (advances) {
    watermark_seconds_ = start;
    if (!seen_expiry_.empty()) EvictExpiredIds(HorizonCutoff());
  }
  if (releasable) {
    if (heap_.empty() && !has_direct_) {
      direct_ = event;
      has_direct_ = true;
      return Status::OK();
    }
    if (has_direct_) {
      // Two releasable events pending: keep the smaller (start, rental
      // id) key in the direct slot so ties still release in rental-id
      // order — the direct slot is always popped first. The displaced
      // event goes to the heap, where it is immediately releasable. A
      // new arrival can never be *older* than the direct event (both
      // are >= the cutoff the direct event was <= of), so only the tie
      // case ever swaps.
      const int64_t direct_start = direct_.start_time.seconds_since_epoch();
      if (start < direct_start ||
          (start == direct_start && event.rental_id < direct_.rental_id)) {
        const TripEvent displaced = direct_;
        direct_ = event;
        PushToHeap(displaced);
        return Status::OK();
      }
    }
  }
  PushToHeap(event);
  return Status::OK();
}

void ReorderBuffer::PushToHeap(const TripEvent& event) {
  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(event);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = event;
  }
  heap_.push(HeapKey{event.start_time.seconds_since_epoch(),
                     event.rental_id, slot});
}

void ReorderBuffer::AdvanceWatermark(CivilTime watermark) {
  const int64_t seconds = watermark.seconds_since_epoch();
  if (seconds <= watermark_seconds_) return;
  watermark_seconds_ = seconds;
  if (!seen_expiry_.empty()) EvictExpiredIds(HorizonCutoff());
}

void ReorderBuffer::Flush() { flushed_ = true; }

void ReorderBuffer::EvictExpiredIds(int64_t cutoff) {
  // Ids whose event start has fallen strictly below the horizon can never
  // match an admissible redelivery (it would be late), so dropping them
  // keeps the set bounded by one horizon of events.
  while (!seen_expiry_.empty() && seen_expiry_.top().first < cutoff) {
    seen_ids_.erase(seen_expiry_.top().second);
    seen_expiry_.pop();
  }
}

}  // namespace bikegraph::stream
