#pragma once

#include <memory>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "analysis/temporal_graph.h"
#include "community/detector.h"
#include "geo/latlon.h"
#include "stream/event.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/snapshot.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {

/// \brief Configuration of a StreamEngine.
struct StreamEngineConfig {
  /// Station universe; event endpoints must be dense ids < station_count.
  size_t station_count = 0;
  /// Sliding-window length in seconds; 0 = landmark window (never
  /// expires — the batch semantics over a replayed dataset).
  int64_t window_seconds = 7 * 86400;
  /// Projection applied at snapshot time (GBasic by default; set the
  /// granularity/floor/contrast for GDay/GHour-style windows).
  analysis::TemporalGraphOptions projection;
  /// Default algorithm for DetectCurrent() (Louvain, per the paper).
  community::DetectSpec detection;
  /// Warm-start escalation policy for the community tracker.
  RefreshPolicy refresh;
  /// Optional station positions (indexed by station id; when set there
  /// must be at least station_count entries and exactly the first
  /// station_count are indexed). Every snapshot then shares one frozen
  /// GridIndex over them, built once at engine construction.
  std::vector<geo::LatLon> station_positions;
  /// Out-of-order tolerance: an arriving event may start up to this many
  /// seconds before the watermark (newest start time seen, or the latest
  /// explicit Advance); a bounded reorder buffer re-sorts such events
  /// into start-time order before they reach the window. Size it to the
  /// feed's worst start-to-report delay (for trips reported at their end,
  /// the longest trip duration). 0 (the default) keeps the strict
  /// pre-buffer contract: any start-time regression is late.
  int64_t max_lateness_seconds = 0;
  /// What happens to an event older than the horizon: kError (default)
  /// fails the Ingest — the pre-buffer contract — while kDrop discards
  /// it and counts it in `late_dropped_count()`, which is what a live
  /// dashboard wants.
  LateEventPolicy late_policy = LateEventPolicy::kError;
  /// Suppress redelivered rental ids within the horizon (real feeds
  /// redeliver); suppressed events count in `duplicate_count()`.
  bool suppress_duplicate_rentals = false;
  /// Data structure behind the reorder buffer: the timing wheel (default)
  /// releases at amortized O(1) per event with memory O(max_lateness);
  /// the min-heap costs O(log buffered) but stays lean on multi-month
  /// horizons. Release order is identical either way.
  ReorderBackend reorder_backend = ReorderBackend::kWheel;
  /// Freeze snapshots by copy-on-write patching of the previous epoch's
  /// CSR and profiles when only a small fraction of the window changed
  /// (see SnapshotDeltaPolicy); disable to force a full rebuild per
  /// epoch.
  SnapshotDeltaPolicy snapshot_delta;
};

/// \brief The live-monitoring entry point: ingest a trip stream, maintain
/// the sliding window, publish immutable snapshots, and keep community
/// structure fresh with warm-started refreshes.
///
/// Typical loop:
///
/// \code
///   StreamEngine engine(config);
///   for (const TripEvent& e : replay) {
///     BIKEGRAPH_RETURN_NOT_OK(engine.Ingest(e));
///     if (window_boundary) {
///       BIKEGRAPH_ASSIGN_OR_RETURN(auto refresh, engine.DetectCurrent());
///       // refresh.result.partition, refresh.nmi_drift, ...
///     }
///   }
/// \endcode
class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config);

  /// Ingests one event. Arrivals may be out of start-time order by up to
  /// `config.max_lateness_seconds`; the reorder buffer re-sorts them, so
  /// an event becomes visible to the window (and to snapshots) only once
  /// the watermark has moved `max_lateness_seconds` past its start time.
  /// Events older than that horizon hit `config.late_policy`. Endpoints
  /// out of `[0, station_count)` are InvalidArgument at arrival.
  Status Ingest(const TripEvent& event);

  /// Advances stream time without an event: releases buffered events the
  /// new watermark makes safe, then expires stale trips. The watermark is
  /// also the reorder buffer's lateness bound, so advancing declares
  /// "events starting before watermark - max_lateness are now late".
  /// Watermarks in the past are a no-op.
  Status Advance(CivilTime watermark);

  /// Marks end-of-stream: drains every buffered event into the window in
  /// start-time order. Call before the final Snapshot()/DetectCurrent()
  /// of a replay; afterwards further Ingest calls fail.
  Status Flush();

  /// Freezes the live window into an immutable snapshot, publishes it,
  /// and returns it. Reuses the latest snapshot when nothing changed
  /// since it was published.
  Result<std::shared_ptr<const WindowSnapshot>> Snapshot();

  /// The most recently published snapshot (nullptr before the first
  /// Snapshot()/DetectCurrent() call). Never blocks ingestion.
  std::shared_ptr<const WindowSnapshot> LatestSnapshot() const {
    return publisher_.Current();
  }

  /// Refreshes community structure on the current window with the
  /// configured default spec.
  Result<RefreshOutcome> DetectCurrent() { return DetectCurrent(config_.detection); }

  /// Refreshes community structure on the current window with an explicit
  /// spec (snapshots first if the window changed). The warm-start seed is
  /// managed by the engine's tracker; `spec.options.initial_partition` is
  /// ignored.
  Result<RefreshOutcome> DetectCurrent(const community::DetectSpec& spec);

  const StreamEngineConfig& config() const { return config_; }
  const SlidingWindowGraph& window() const { return window_; }
  const IncrementalCommunityTracker& tracker() const { return tracker_; }
  const ReorderBuffer& reorder() const { return reorder_; }
  CivilTime watermark() const { return window_.watermark(); }
  size_t ingested_count() const { return window_.ingested_count(); }

  /// Reorder-buffer stats, surfaced for dashboards: events re-sorted by
  /// the buffer, events dropped as too late (LateEventPolicy::kDrop),
  /// redeliveries suppressed, and events admitted but not yet released
  /// to the window.
  uint64_t reordered_count() const { return reorder_.reordered_count(); }
  uint64_t late_dropped_count() const {
    return reorder_.late_dropped_count();
  }
  uint64_t duplicate_count() const { return reorder_.duplicate_count(); }
  size_t buffered_count() const { return reorder_.buffered_count(); }

  /// Snapshot-freeze stats: epochs frozen by copy-on-write delta
  /// patching vs by a full window rebuild (the first epoch, large dirty
  /// fractions, and dirty-set overflows all take the full path).
  uint64_t delta_freeze_count() const { return delta_freeze_count_; }
  uint64_t full_freeze_count() const { return full_freeze_count_; }

 private:
  /// Moves every releasable buffered event into the window.
  Status DrainReady();

  StreamEngineConfig config_;
  ReorderBuffer reorder_;
  SlidingWindowGraph window_;
  SnapshotPublisher publisher_;
  IncrementalCommunityTracker tracker_;
  /// Built once from config_.station_positions and shared by every
  /// snapshot (stations never move between windows).
  std::shared_ptr<const geo::GridIndex> station_index_;
  /// True when the live window changed after the last publish.
  bool dirty_ = true;
  uint64_t delta_freeze_count_ = 0;
  uint64_t full_freeze_count_ = 0;
};

}  // namespace bikegraph::stream
