#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "analysis/temporal_graph.h"
#include "community/detector.h"
#include "geo/latlon.h"
#include "stream/checkpoint.h"
#include "stream/event.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/shard.h"
#include "stream/snapshot.h"
#include "stream/wal.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {

namespace detail {
class EngineShard;
struct ShardCommand;
}  // namespace detail

/// \brief Configuration of a StreamEngine.
struct StreamEngineConfig {
  /// Station universe; event endpoints must be dense ids < station_count.
  size_t station_count = 0;
  /// Sliding-window length in seconds; 0 = landmark window (never
  /// expires — the batch semantics over a replayed dataset).
  int64_t window_seconds = 7 * 86400;
  /// Projection applied at snapshot time (GBasic by default; set the
  /// granularity/floor/contrast for GDay/GHour-style windows).
  analysis::TemporalGraphOptions projection;
  /// Default algorithm for DetectCurrent() (Louvain, per the paper).
  community::DetectSpec detection;
  /// Warm-start escalation policy for the community tracker.
  RefreshPolicy refresh;
  /// Optional station positions (indexed by station id; when set there
  /// must be at least station_count entries and exactly the first
  /// station_count are indexed). Every snapshot then shares one frozen
  /// GridIndex over them, built once at engine construction.
  std::vector<geo::LatLon> station_positions;
  /// Out-of-order tolerance: an arriving event may start up to this many
  /// seconds before the watermark (newest start time seen, or the latest
  /// explicit Advance); a bounded reorder buffer re-sorts such events
  /// into start-time order before they reach the window. Size it to the
  /// feed's worst start-to-report delay (for trips reported at their end,
  /// the longest trip duration). 0 (the default) keeps the strict
  /// pre-buffer contract: any start-time regression is late.
  int64_t max_lateness_seconds = 0;
  /// What happens to an event older than the horizon: kError (default)
  /// fails the Ingest — the pre-buffer contract — while kDrop discards
  /// it and counts it in `late_dropped_count()`, which is what a live
  /// dashboard wants.
  LateEventPolicy late_policy = LateEventPolicy::kError;
  /// Suppress redelivered rental ids within the horizon (real feeds
  /// redeliver); suppressed events count in `duplicate_count()`.
  bool suppress_duplicate_rentals = false;
  /// Cap on the duplicate-suppression id set (0 = unbounded); see
  /// ReorderBufferOptions::max_duplicate_ids for the eviction contract.
  size_t max_duplicate_rental_ids = size_t{1} << 20;
  /// Data structure behind the reorder buffer: the timing wheel (default)
  /// releases at amortized O(1) per event with memory O(max_lateness);
  /// the min-heap costs O(log buffered) but stays lean on multi-month
  /// horizons. Release order is identical either way.
  ReorderBackend reorder_backend = ReorderBackend::kWheel;
  /// Freeze snapshots by copy-on-write patching of the previous epoch's
  /// CSR and profiles when only a small fraction of the window changed
  /// (see SnapshotDeltaPolicy); disable to force a full rebuild per
  /// epoch.
  SnapshotDeltaPolicy snapshot_delta;
  /// Durability: with `durability.enabled`, every state-changing call is
  /// written to a write-ahead log under `durability.directory` before it
  /// is applied, and `Checkpoint()` / `StreamEngine::Recover()` provide
  /// crash-consistent save/restore (see docs/DURABILITY.md). Disabled
  /// (the default) the engine touches no files and the ingest hot path
  /// is unchanged.
  DurabilityConfig durability;
  /// Ingest parallelism: the stream vertical is partitioned into this
  /// many shards, each owning its own reorder buffer and window graph
  /// and fed by a bounded SPSC ring from the ingest thread (stations are
  /// hash-partitioned; a pair belongs to the shard of its smaller
  /// endpoint — see ShardRouter). 1 (the default, and the meaning of 0)
  /// keeps today's single-writer engine: no threads, no queues, every
  /// call applied inline. With N > 1 the mutating API is unchanged but
  /// Ingest/Advance errors from inside a shard are deferred to the next
  /// barrier point (Snapshot/Flush/Checkpoint) instead of returned by
  /// the enqueuing call, and the live accessors are only meaningful at
  /// those same quiescent points. Snapshots are bit-identical to the
  /// single-writer engine's for any N (merge-at-freeze; locked by
  /// tests/stream_shard_test.cc). `shard_count` is part of the durable
  /// fingerprint: a WAL directory written under N shards must be
  /// recovered with N shards.
  size_t shard_count = 1;
};

/// \brief The live-monitoring entry point: ingest a trip stream, maintain
/// the sliding window, publish immutable snapshots, and keep community
/// structure fresh with warm-started refreshes.
///
/// Thread model (see docs/SERVING.md): all *mutating* calls — Ingest,
/// Advance, Flush, Snapshot, DetectCurrent, Checkpoint — belong to one
/// ingestion thread. Concurrently with that thread, any number of reader
/// threads may call `LatestSnapshot()` / `publisher()` (the atomic
/// RCU-style hand-off) and the freeze-stat getters
/// `delta_freeze_count()` / `full_freeze_count()`; the supported
/// concurrent read path is a `query::QueryService` over `publisher()`.
/// The live accessors `window()`, `reorder()`, `tracker()` and the
/// counters derived from them read mutable ingest state and are
/// ingestion-thread-only — and with `shard_count > 1` they are
/// additionally only meaningful immediately after a barrier point
/// (Snapshot, Flush, Checkpoint, or construction), when every shard
/// worker is quiescent.
///
/// Sharded mode (`config.shard_count > 1`): the engine owns one worker
/// thread per shard. Ingest routes each event to its owning shard's SPSC
/// ring and returns without waiting; Snapshot runs a two-phase barrier —
/// first draining every shard to the common reorder watermark, then
/// advancing every shard window to the merged window watermark — and
/// freezes the disjoint per-shard windows through one merged view
/// (stream/shard.h), so the published snapshot is bit-identical to the
/// single-writer engine's over the same logical stream. See
/// docs/STREAMING.md for the partition function, barrier, and merge-cost
/// model.
///
/// Typical loop:
///
/// \code
///   StreamEngine engine(config);
///   for (const TripEvent& e : replay) {
///     BIKEGRAPH_RETURN_NOT_OK(engine.Ingest(e));
///     if (window_boundary) {
///       BIKEGRAPH_ASSIGN_OR_RETURN(auto refresh, engine.DetectCurrent());
///       // refresh.result.partition, refresh.nmi_drift, ...
///     }
///   }
/// \endcode
class StreamEngine {
 public:
  /// Constructs a fresh engine. With durability enabled this creates the
  /// WAL directory and refuses (FailedPrecondition, surfaced on the
  /// first durable call) a directory that already holds durable state —
  /// resuming an existing directory is `Recover()`'s job, and silently
  /// logging a fresh run over an old one would orphan its records.
  explicit StreamEngine(StreamEngineConfig config);

  /// Joins the shard workers (no-op for shard_count == 1). Commands
  /// still queued are applied before the workers exit.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// \brief What `Recover` found and did.
  struct RecoveryStats {
    bool used_checkpoint = false;
    /// WAL sequence the loaded checkpoint covered (0 = none).
    uint64_t checkpoint_seq = 0;
    /// Newer-but-corrupt checkpoint files skipped.
    uint64_t skipped_checkpoints = 0;
    /// WAL records replayed on top of the checkpoint.
    uint64_t replayed_records = 0;
    /// Replayed records that returned an error (counted, not fatal: a
    /// record that failed in the original run fails identically here and
    /// leaves the state unchanged either way).
    uint64_t replay_errors = 0;
    /// The sequence number recovery caught up to; the next durable call
    /// logs `recovered_seq + 1`.
    uint64_t recovered_seq = 0;
    /// Torn bytes truncated from the WAL tail (a crash mid-append).
    uint64_t truncated_bytes = 0;
  };

  /// Rebuilds an engine from `config.durability.directory`: loads the
  /// newest valid checkpoint, replays the WAL records past it, repairs a
  /// torn tail, and reattaches the writer so the run continues where the
  /// crashed one stopped. The recovered engine is bit-identical to the
  /// uninterrupted run at the same point — window contents, published
  /// snapshot, tracker seed and counters (locked by
  /// tests/stream_durability_test.cc at randomized kill points). An
  /// empty or missing directory recovers to a fresh engine. Fails with
  /// FailedPrecondition when the checkpoint's config fingerprint
  /// (station count, window, lateness, policies, shard count) disagrees
  /// with `config`, and DataLoss when WAL records are missing or corrupt
  /// anywhere but the tail. Replay is single-threaded regardless of
  /// shard count (the router re-partitions the merged log
  /// deterministically); shard workers start once replay completes.
  [[nodiscard]] static Result<std::unique_ptr<StreamEngine>> Recover(
      StreamEngineConfig config, RecoveryStats* stats = nullptr);

  /// Ingests one event. Arrivals may be out of start-time order by up to
  /// `config.max_lateness_seconds`; the reorder buffer re-sorts them, so
  /// an event becomes visible to the window (and to snapshots) only once
  /// the watermark has moved `max_lateness_seconds` past its start time.
  /// Events older than that horizon hit `config.late_policy`. Endpoints
  /// out of `[0, station_count)` are InvalidArgument at arrival, and
  /// ingesting after Flush() is FailedPrecondition. With shard_count > 1
  /// a per-shard failure (a late event under LateEventPolicy::kError)
  /// surfaces at the next barrier point rather than here.
  [[nodiscard]] Status Ingest(const TripEvent& event);

  /// Advances stream time without an event: releases buffered events the
  /// new watermark makes safe, then expires stale trips. The watermark is
  /// also the reorder buffer's lateness bound, so advancing declares
  /// "events starting before watermark - max_lateness are now late".
  /// Watermarks in the past are a no-op.
  [[nodiscard]] Status Advance(CivilTime watermark);

  /// Marks end-of-stream: drains every buffered event into the window in
  /// start-time order. Call before the final Snapshot()/DetectCurrent()
  /// of a replay; afterwards further Ingest calls fail. Idempotent — a
  /// second Flush is a no-op, not an error. Sharded: a barrier point
  /// (waits for every shard to drain; surfaces deferred shard errors).
  [[nodiscard]] Status Flush();

  /// Freezes the live window into an immutable snapshot, publishes it,
  /// and returns it. Reuses the latest snapshot when nothing changed
  /// since it was published. After any ApplyDelta desync (see
  /// `delta_desync_count()`) the freeze takes the full-rebuild path once,
  /// which resynchronizes the published graph with the live counters.
  /// Sharded: a barrier point — drains every shard to the common
  /// watermark, merges the per-shard dirty sets in shard order, and
  /// freezes through the merged view; surfaces deferred shard errors.
  [[nodiscard]] Result<std::shared_ptr<const WindowSnapshot>> Snapshot();

  /// The most recently published snapshot (nullptr before the first
  /// Snapshot()/DetectCurrent() call). Never blocks ingestion; safe from
  /// any thread (atomic load — see SnapshotPublisher).
  std::shared_ptr<const WindowSnapshot> LatestSnapshot() const {
    return publisher_.Current();
  }

  /// The engine's snapshot hand-off point, for concurrent read-side
  /// consumers (query::QueryService pins epochs through it). Safe from
  /// any thread, for any shard count — sharded ingestion publishes
  /// through this same single publisher after its merge barrier.
  const SnapshotPublisher& publisher() const { return publisher_; }

  /// Refreshes community structure on the current window with the
  /// configured default spec.
  [[nodiscard]] Result<RefreshOutcome> DetectCurrent();

  /// Refreshes community structure on the current window with an explicit
  /// spec (snapshots first if the window changed). The warm-start seed is
  /// managed by the engine's tracker; `spec.options.initial_partition` is
  /// ignored.
  [[nodiscard]] Result<RefreshOutcome> DetectCurrent(
      const community::DetectSpec& spec);

  /// Durability only: fsyncs the WAL through the last appended record
  /// (appends are group-synced every `sync_interval_records` otherwise).
  /// No-op when durability is disabled.
  [[nodiscard]] Status SyncWal();

  /// Durability only: syncs the WAL, writes a crash-consistent checkpoint
  /// of the complete engine state, prunes old checkpoints down to
  /// `checkpoints_kept`, and prunes WAL segments no kept checkpoint
  /// needs. FailedPrecondition when durability is disabled. Sharded: a
  /// barrier point (the checkpoint must capture quiescent shards).
  [[nodiscard]] Status Checkpoint();

  /// Copies out the complete logical state (what `Checkpoint()` writes),
  /// including every shard's components and applied-command counter.
  /// Exposed so tests can compare a recovered engine against an
  /// uninterrupted one bit for bit via SerializeCheckpoint. Sharded:
  /// call only at a quiescent point (after Snapshot/Flush/Checkpoint).
  EngineCheckpoint CaptureState() const;

  const StreamEngineConfig& config() const { return config_; }
  /// Shards this engine ingests through (>= 1; 1 = the single-writer
  /// engine, no worker threads).
  size_t shard_count() const { return shards_.size(); }
  /// Shard 0's live window. With one shard this is *the* window (the
  /// legacy accessor); with several it is one disjoint slice — use
  /// Snapshot() / trip_count() / watermark() for whole-stream views.
  /// Ingestion-thread-only, quiescent-only when sharded.
  const SlidingWindowGraph& window() const;
  const IncrementalCommunityTracker& tracker() const { return tracker_; }
  /// Shard 0's reorder buffer (see window() for the sharded caveat).
  const ReorderBuffer& reorder() const;
  /// The merged stream time: the newest window watermark across shards
  /// (equal to the single-writer watermark for any shard count).
  CivilTime watermark() const;
  /// Events ingested into windows across all shards.
  size_t ingested_count() const;
  /// Trips currently inside the merged window (sum over shards; pairs
  /// are disjoint so nothing is counted twice).
  size_t trip_count() const;
  /// Trips expired out of the sliding window across all shards.
  size_t expired_count() const;
  /// True once Flush() has run (further Ingest calls fail).
  bool flushed() const { return flushed_; }
  /// Sequence number of the last WAL record appended (0 when durability
  /// is disabled or nothing was logged yet).
  uint64_t wal_seq() const { return wal_seq_; }

  /// Durability fault accounting (DurabilityConfig::faults). The retry
  /// counters survive a degrade (the pre-degrade tallies are stashed
  /// before the writer is dropped), so conservation checks hold at any
  /// point. Ingestion-thread-only; when sharded, stable at barriers like
  /// the other serving counters — the WAL is written by the ingestion
  /// thread before dispatch, so shard count never changes the values.
  ///
  /// Backed-off retries performed against FaultPolicy::max_retries.
  uint64_t wal_retry_count() const {
    return wal_retry_base_ + (wal_ ? wal_->retry_count() : 0);
  }
  /// Durable calls that failed transiently and then succeeded.
  uint64_t wal_transient_recovered_count() const {
    return wal_transient_base_ + (wal_ ? wal_->transient_recovered_count() : 0);
  }
  /// ENOSPC self-heal prune attempts (see FaultPolicy).
  uint64_t wal_enospc_prune_count() const {
    return wal_enospc_base_ + (wal_ ? wal_->enospc_prune_count() : 0);
  }
  /// True once the engine dropped to loudly-non-durable mode
  /// (FaultPolicy::degrade_on_exhausted): ingestion continues, logging
  /// has stopped, and the directory carries the degraded marker so
  /// Recover() will refuse it with DataLoss rather than silently serve
  /// the logged prefix as the whole run.
  bool degraded() const { return degraded_; }
  /// The failure that triggered the degrade (OK while not degraded).
  const Status& degrade_reason() const { return degrade_reason_; }

  /// Reorder-buffer stats, surfaced for dashboards: events re-sorted by
  /// the buffer, events dropped as too late (LateEventPolicy::kDrop),
  /// redeliveries suppressed, and events admitted but not yet released
  /// to the window. Sums over shards; ingestion-thread-only,
  /// quiescent-only when sharded.
  uint64_t reordered_count() const;
  uint64_t late_dropped_count() const;
  uint64_t duplicate_count() const;
  size_t buffered_count() const;
  /// Duplicate-suppression memory bound: peak id-set size (max over
  /// shards — each shard holds its own id set), and ids evicted by the
  /// `max_duplicate_rental_ids` cap (sum over shards).
  uint64_t duplicate_ids_high_water() const;
  uint64_t duplicate_ids_evicted() const;

  /// Snapshot-freeze stats: epochs frozen by copy-on-write delta
  /// patching vs by a full window rebuild (the first epoch, large dirty
  /// fractions, and dirty-set overflows all take the full path). The
  /// counters are atomics so a dashboard thread can poll them while the
  /// ingestion thread freezes; relaxed order — they are monotonic tallies
  /// with no cross-variable invariant for readers to rely on.
  uint64_t delta_freeze_count() const {
    return delta_freeze_count_.load(std::memory_order_relaxed);
  }
  uint64_t full_freeze_count() const {
    return full_freeze_count_.load(std::memory_order_relaxed);
  }
  /// Delta applications the window graph refused because the stored pair
  /// count disagreed (a would-have-been corruption, recovered by
  /// skipping; see SlidingWindowGraph::delta_desync_count). Non-zero is
  /// a bug worth reporting, but the engine stays correct: the next
  /// Snapshot() forces a full freeze. Summed over shards.
  size_t delta_desync_count() const;

 private:
  struct RecoverTag {};
  /// Constructs components only; durability is attached afterwards by
  /// InitDurability (fresh engine) or Recover (restore), and shard
  /// workers start last (public constructor / end of Recover).
  StreamEngine(RecoverTag, StreamEngineConfig config);

  /// Fresh-engine durability setup: create the directory, refuse one
  /// with existing durable state, open the writer at sequence 1. A
  /// failure parks in durability_status_ (constructors cannot fail) and
  /// surfaces on the first durable call.
  void InitDurability();

  /// Spawns one worker per shard (no-op for shard_count == 1). Called
  /// after construction/recovery is complete so workers never observe a
  /// half-built engine.
  void StartShardWorkers();
  /// Signals and joins every worker; queued commands finish first.
  void StopShardWorkers();

  /// Appends `record` (the intent of the current public call) to the WAL
  /// before the call's state change is applied. No-op (OK) when
  /// durability is disabled or the engine has degraded. Under the
  /// degrade policy an exhausted append degrades the engine and returns
  /// OK so the caller's state change still happens (un-logged, loudly).
  Status LogRecord(const WalRecord& record);

  /// The degrade transition: stash the writer's fault counters, abandon
  /// the WAL, drop the loud on-disk marker (best-effort), and log the
  /// reason at Error level. Idempotent in effect (only called once).
  void EnterDegradedMode(const Status& reason);

  /// Replays one WAL record through the non-logging internals. Errors
  /// mirror the original run's and leave state unchanged.
  Status ApplyWalRecord(const WalRecord& record);

  /// Restores the complete logical state from a parsed checkpoint.
  Status RestoreFromCheckpoint(const EngineCheckpoint& checkpoint);

  // The public entry points log intent, then call these; WAL replay
  // calls them directly. Identical bytes in, identical state out.
  Status IngestInternal(const TripEvent& event);
  Status AdvanceInternal(CivilTime watermark);
  Status FlushInternal();
  Result<std::shared_ptr<const WindowSnapshot>> SnapshotInternal();
  Result<RefreshOutcome> DetectInternal(const community::DetectSpec& spec);

  /// Single-shard fast path: applies `cmd` to shard 0 on the calling
  /// thread, collects its dirty flag eagerly (the legacy `dirty_`
  /// semantics), resyncs the global reorder watermark from the
  /// authoritative buffer, and returns the command's status directly —
  /// bit-for-bit the pre-sharding engine.
  Status ApplySingle(const detail::ShardCommand& cmd);
  /// Multi-shard dispatch: enqueue on the shard's ring (spinning on a
  /// full ring) when workers run, or apply inline with the same
  /// deferred-error bookkeeping during WAL replay. Never fails;
  /// per-command failures park in the shard's first_error.
  void Deliver(size_t shard, const detail::ShardCommand& cmd);
  /// Blocks until every shard has applied every command dispatched so
  /// far (acked == pushed, acquire).
  void WaitQuiescent();
  /// After quiescence: folds shard dirty flags into dirty_ (clearing
  /// them) and returns the first deferred shard error in shard order
  /// (clearing all) — each error is surfaced exactly once.
  Status CollectShardState();
  /// The sharded freeze barrier: phase 1 aligns every shard's reorder
  /// clock to the global watermark and drains what that releases; phase
  /// 2 advances every shard window to the merged window watermark so
  /// expiry is uniform. Quiescent on return; surfaces deferred errors.
  Status BarrierQuiesce();
  /// Full (non-delta) freeze of the live window — shard 0 directly, or
  /// the merged view over all shards. Shards must be quiescent.
  Result<WindowSnapshot> FreezeFull() const;

  StreamEngineConfig config_;
  /// pair -> owning shard (stable splitmix64 hash; see stream/shard.h).
  ShardRouter router_;
  /// The shard vertical(s): reorder buffer + window graph + dirty flag
  /// (+ ring and worker when shard_count > 1). Never empty; shard 0
  /// doubles as the single-writer engine.
  std::vector<std::unique_ptr<detail::EngineShard>> shards_;
  SnapshotPublisher publisher_;
  IncrementalCommunityTracker tracker_;
  /// Built once from config_.station_positions and shared by every
  /// snapshot (stations never move between windows).
  std::shared_ptr<const geo::GridIndex> station_index_;
  /// True when the live window changed after the last publish. With one
  /// shard it is updated eagerly per call; with several it absorbs the
  /// shard dirty flags at each barrier.
  bool dirty_ = true;
  bool flushed_ = false;
  /// Written by the ingestion thread, polled by dashboard threads.
  std::atomic<uint64_t> delta_freeze_count_{0};
  std::atomic<uint64_t> full_freeze_count_{0};
  /// delta_desync_count() as of the last successful freeze; a newer
  /// desync forces the next freeze down the full path.
  uint64_t desyncs_at_last_freeze_ = 0;
  /// The watermark the *single* reorder buffer would hold: raised by the
  /// same rule ReorderBuffer::Push applies (an arrival raises it iff it
  /// is not late and moves time forward) plus explicit advances. Every
  /// dispatched command carries it so a shard that last saw an event an
  /// hour ago still makes late/release decisions against stream-wide
  /// time, not its own stale clock. With one shard it simply mirrors the
  /// buffer's own watermark.
  int64_t global_reorder_wm_ = INT64_MIN;
  /// True once shard workers run (shard_count > 1, after construction /
  /// recovery). False means every Deliver applies inline — which is how
  /// WAL replay stays deterministic.
  bool started_ = false;

  /// nullptr when durability is disabled.
  std::unique_ptr<WalWriter> wal_;
  /// Deferred durability failure (from construction or a poisoned
  /// writer), surfaced on every durable call until resolved.
  Status durability_status_ = Status::OK();
  uint64_t wal_seq_ = 0;
  /// Degrade state (FaultPolicy::degrade_on_exhausted): once true, the
  /// engine serves non-durably and wal_ is gone.
  bool degraded_ = false;
  Status degrade_reason_ = Status::OK();
  /// Fault-counter tallies carried over from a dropped writer so the
  /// wal_*_count() accessors stay conserved across a degrade.
  uint64_t wal_retry_base_ = 0;
  uint64_t wal_transient_base_ = 0;
  uint64_t wal_enospc_base_ = 0;
};

}  // namespace bikegraph::stream
