#include "stream/replay.h"

#include <algorithm>
#include <chrono>
// lint: thread-ok: this_thread::sleep_for only — realtime replay pacing;
// no spawned threads and no shared state.
#include <thread>
#include <utility>

#include "core/rng.h"

namespace bikegraph::stream {

JitteredStream JitterArrivalOrder(std::vector<TripEvent> events,
                                  int64_t shuffle_seconds, uint64_t seed) {
  JitteredStream stream;
  if (shuffle_seconds <= 0 || events.size() < 2) {
    stream.events = std::move(events);
    return stream;  // unjittered: arrival time == start time
  }
  Rng rng(seed);
  std::vector<std::pair<int64_t, size_t>> order;
  order.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const int64_t report =
        events[i].start_time.seconds_since_epoch() +
        static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(shuffle_seconds) + 1));
    order.emplace_back(report, i);
  }
  // Ties keep the start-time order (the second pair member is the sorted
  // index), so equal report times never invert more than the lag allows.
  std::sort(order.begin(), order.end());
  stream.events.reserve(events.size());
  stream.report_seconds.reserve(events.size());
  for (const auto& [report, index] : order) {
    stream.events.push_back(events[index]);
    stream.report_seconds.push_back(report);
  }
  return stream;
}

std::vector<TripEvent> MakeTripEvents(const data::Dataset& dataset,
                                      const StationMapper& map_location,
                                      size_t* dropped) {
  std::vector<TripEvent> events;
  events.reserve(dataset.rentals().size());
  size_t skipped = 0;
  for (const data::RentalRecord& rental : dataset.rentals()) {
    if (!rental.has_location_ids()) {
      ++skipped;
      continue;
    }
    const std::optional<int32_t> from = map_location(rental.rental_location_id);
    const std::optional<int32_t> to = map_location(rental.return_location_id);
    if (!from || !to) {
      ++skipped;
      continue;
    }
    TripEvent e;
    e.rental_id = rental.id;
    e.from_station = *from;
    e.to_station = *to;
    e.start_time = rental.start_time;
    e.end_time = rental.end_time;
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TripEvent& a, const TripEvent& b) {
                     if (a.start_time != b.start_time) {
                       return a.start_time < b.start_time;
                     }
                     return a.rental_id < b.rental_id;
                   });
  if (dropped != nullptr) *dropped = skipped;
  return events;
}

ReplaySource ReplaySource::FromDataset(const data::Dataset& dataset,
                                       const StationMapper& map_location,
                                       const ReplayOptions& options) {
  size_t dropped = 0;
  std::vector<TripEvent> events =
      MakeTripEvents(dataset, map_location, &dropped);
  return ReplaySource(JitterArrivalOrder(std::move(events),
                                         options.shuffle_seconds,
                                         options.shuffle_seed),
                      dropped, options);
}

ReplaySource ReplaySource::FromFinalNetwork(
    const data::Dataset& cleaned, const expansion::FinalNetwork& network,
    const ReplayOptions& options) {
  return FromDataset(
      cleaned,
      [&network](int64_t location_id) -> std::optional<int32_t> {
        auto it = network.location_to_station.find(location_id);
        if (it == network.location_to_station.end()) return std::nullopt;
        return it->second;
      },
      options);
}

std::optional<TripEvent> ReplaySource::Next() {
  if (Done()) return std::nullopt;
  const TripEvent& e = events_[cursor_];
  if (options_.speed > 0.0 && cursor_ > 0) {
    // Pace on arrival time: the jittered report times when present (they
    // are non-decreasing, so the total slept event-time equals the
    // stream's span — pacing on the fluctuating start times would sleep
    // on every upward jump and overshoot the span many times over), the
    // start times otherwise.
    const int64_t gap =
        report_seconds_.empty()
            ? e.start_time.seconds_since_epoch() -
                  events_[cursor_ - 1].start_time.seconds_since_epoch()
            : report_seconds_[cursor_] - report_seconds_[cursor_ - 1];
    if (gap > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          static_cast<double>(gap) / options_.speed));
    }
  }
  ++cursor_;
  return e;
}

Status ReplaySource::ReplayInto(StreamEngine* engine) {
  while (auto event = Next()) {
    BIKEGRAPH_RETURN_NOT_OK(engine->Ingest(*event));
  }
  // End of stream: release whatever the reorder buffer still holds (for
  // an ordered replay the buffer is pass-through and this is a no-op).
  return engine->Flush();
}

}  // namespace bikegraph::stream
