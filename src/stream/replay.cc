#include "stream/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bikegraph::stream {

std::vector<TripEvent> MakeTripEvents(const data::Dataset& dataset,
                                      const StationMapper& map_location,
                                      size_t* dropped) {
  std::vector<TripEvent> events;
  events.reserve(dataset.rentals().size());
  size_t skipped = 0;
  for (const data::RentalRecord& rental : dataset.rentals()) {
    if (!rental.has_location_ids()) {
      ++skipped;
      continue;
    }
    const std::optional<int32_t> from = map_location(rental.rental_location_id);
    const std::optional<int32_t> to = map_location(rental.return_location_id);
    if (!from || !to) {
      ++skipped;
      continue;
    }
    TripEvent e;
    e.rental_id = rental.id;
    e.from_station = *from;
    e.to_station = *to;
    e.start_time = rental.start_time;
    e.end_time = rental.end_time;
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TripEvent& a, const TripEvent& b) {
                     if (a.start_time != b.start_time) {
                       return a.start_time < b.start_time;
                     }
                     return a.rental_id < b.rental_id;
                   });
  if (dropped != nullptr) *dropped = skipped;
  return events;
}

ReplaySource ReplaySource::FromDataset(const data::Dataset& dataset,
                                       const StationMapper& map_location,
                                       const ReplayOptions& options) {
  size_t dropped = 0;
  std::vector<TripEvent> events =
      MakeTripEvents(dataset, map_location, &dropped);
  return ReplaySource(std::move(events), dropped, options);
}

ReplaySource ReplaySource::FromFinalNetwork(
    const data::Dataset& cleaned, const expansion::FinalNetwork& network,
    const ReplayOptions& options) {
  return FromDataset(
      cleaned,
      [&network](int64_t location_id) -> std::optional<int32_t> {
        auto it = network.location_to_station.find(location_id);
        if (it == network.location_to_station.end()) return std::nullopt;
        return it->second;
      },
      options);
}

std::optional<TripEvent> ReplaySource::Next() {
  if (Done()) return std::nullopt;
  const TripEvent& e = events_[cursor_];
  if (options_.speed > 0.0 && cursor_ > 0) {
    const int64_t gap = e.start_time.seconds_since_epoch() -
                        events_[cursor_ - 1].start_time.seconds_since_epoch();
    if (gap > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          static_cast<double>(gap) / options_.speed));
    }
  }
  ++cursor_;
  return e;
}

Status ReplaySource::ReplayInto(StreamEngine* engine) {
  while (auto event = Next()) {
    BIKEGRAPH_RETURN_NOT_OK(engine->Ingest(*event));
  }
  return Status::OK();
}

}  // namespace bikegraph::stream
