#include "stream/engine.h"

namespace bikegraph::stream {

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)),
      window_(WindowGraphOptions{config_.station_count,
                                 config_.window_seconds}),
      tracker_(config_.refresh) {
  if (config_.station_positions.size() >= config_.station_count) {
    // Index exactly the station universe; extra entries are not station
    // ids and must not leak into snapshot spatial queries.
    station_index_ = BuildFrozenStationIndex(
        {config_.station_positions.begin(),
         config_.station_positions.begin() +
             static_cast<long>(config_.station_count)});
  }
}

Status StreamEngine::Ingest(const TripEvent& event) {
  // Fail fast on a truncated positions table instead of hours later at
  // the first Snapshot() of a live run.
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  BIKEGRAPH_RETURN_NOT_OK(window_.Ingest(event));
  dirty_ = true;
  return Status::OK();
}

Status StreamEngine::Advance(CivilTime watermark) {
  const size_t before = window_.trip_count();
  const CivilTime old_mark = window_.watermark();
  window_.Advance(watermark);
  if (window_.trip_count() != before || window_.watermark() != old_mark) {
    dirty_ = true;
  }
  return Status::OK();
}

Result<std::shared_ptr<const WindowSnapshot>> StreamEngine::Snapshot() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  if (!dirty_) {
    auto current = publisher_.Current();
    if (current) return current;
  }
  BIKEGRAPH_ASSIGN_OR_RETURN(
      WindowSnapshot snap,
      FreezeSnapshot(window_, config_.projection, station_index_));
  dirty_ = false;
  return publisher_.Publish(std::move(snap));
}

Result<RefreshOutcome> StreamEngine::DetectCurrent(
    const community::DetectSpec& spec) {
  BIKEGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<const WindowSnapshot> snap,
                             Snapshot());
  return tracker_.Refresh(snap->graph, spec);
}

}  // namespace bikegraph::stream
