#include "stream/engine.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

namespace bikegraph::stream {

namespace {

namespace fs = std::filesystem;

bool IsWalSegmentName(const std::string& name) {
  return name.size() == 28 && name.rfind("wal-", 0) == 0 &&
         name.compare(24, 4, ".log") == 0;
}

}  // namespace

StreamEngine::StreamEngine(RecoverTag, StreamEngineConfig config)
    : config_(std::move(config)),
      reorder_(ReorderBufferOptions{config_.max_lateness_seconds,
                                    config_.late_policy,
                                    config_.suppress_duplicate_rentals,
                                    config_.reorder_backend,
                                    config_.max_duplicate_rental_ids}),
      window_(WindowGraphOptions{config_.station_count,
                                 config_.window_seconds}),
      tracker_(config_.refresh) {
  if (config_.station_positions.size() >= config_.station_count) {
    // Index exactly the station universe; extra entries are not station
    // ids and must not leak into snapshot spatial queries.
    station_index_ = BuildFrozenStationIndex(
        {config_.station_positions.begin(),
         config_.station_positions.begin() +
             static_cast<long>(config_.station_count)});
  }
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : StreamEngine(RecoverTag{}, std::move(config)) {
  InitDurability();
}

void StreamEngine::InitDurability() {
  if (!config_.durability.enabled) return;
  if (config_.durability.directory.empty()) {
    durability_status_ =
        Status::InvalidArgument("durability.directory must be set");
    return;
  }
  std::error_code ec;
  fs::create_directories(config_.durability.directory, ec);
  if (ec) {
    durability_status_ = Status::IOError(
        "create durability directory '" + config_.durability.directory +
        "': " + ec.message());
    return;
  }
  if (DirectoryHasDurableState(config_.durability.directory)) {
    durability_status_ = Status::FailedPrecondition(
        "durability directory '" + config_.durability.directory +
        "' already holds WAL/checkpoint state; use StreamEngine::Recover() "
        "to resume it (or point a fresh engine at an empty directory)");
    return;
  }
  auto writer = WalWriter::Open(config_.durability, /*next_seq=*/1);
  if (!writer.ok()) {
    durability_status_ = writer.status();
    return;
  }
  wal_ = std::move(*writer);
}

Status StreamEngine::LogRecord(const WalRecord& record) {
  if (!config_.durability.enabled) return Status::OK();
  if (!durability_status_.ok()) return durability_status_;
  const Status status = wal_->Append(record);
  if (!status.ok()) {
    // A failed append poisons the writer; every later durable call
    // surfaces the same error instead of silently diverging from disk.
    durability_status_ = status;
    return status;
  }
  ++wal_seq_;
  return Status::OK();
}

Status StreamEngine::Ingest(const TripEvent& event) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "Ingest after Flush: the stream was already finalized");
  }
  // Fail fast on a truncated positions table instead of hours later at
  // the first Snapshot() of a live run.
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  // Validate endpoints at arrival: an out-of-range event parked in the
  // reorder buffer would otherwise fail a horizon later, far from the
  // caller that produced it. Rejected events are never logged — the WAL
  // records intent that passed admission, so replay cannot diverge on
  // validation.
  const auto n = static_cast<int64_t>(config_.station_count);
  if (event.from_station < 0 || event.from_station >= n ||
      event.to_station < 0 || event.to_station >= n) {
    return Status::InvalidArgument("trip event endpoint out of range");
  }
  WalRecord record;
  record.type = WalRecordType::kEvent;
  record.event = event;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return IngestInternal(event);
}

Status StreamEngine::IngestInternal(const TripEvent& event) {
  BIKEGRAPH_RETURN_NOT_OK(reorder_.Push(event));
  return DrainReady();
}

Status StreamEngine::Advance(CivilTime watermark) {
  WalRecord record;
  record.type = WalRecordType::kAdvance;
  record.watermark_seconds = watermark.seconds_since_epoch();
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return AdvanceInternal(watermark);
}

Status StreamEngine::AdvanceInternal(CivilTime watermark) {
  // Raise the reorder watermark first: events it makes releasable carry
  // start times <= watermark - max_lateness, so they enter the window
  // before it expires anything at the new watermark.
  reorder_.AdvanceWatermark(watermark);
  BIKEGRAPH_RETURN_NOT_OK(DrainReady());
  const size_t before = window_.trip_count();
  const CivilTime old_mark = window_.watermark();
  window_.Advance(watermark);
  if (window_.trip_count() != before || window_.watermark() != old_mark) {
    dirty_ = true;
  }
  return Status::OK();
}

Status StreamEngine::Flush() {
  if (flushed_) return Status::OK();
  WalRecord record;
  record.type = WalRecordType::kFlush;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return FlushInternal();
}

Status StreamEngine::FlushInternal() {
  flushed_ = true;
  reorder_.Flush();
  return DrainReady();
}

Status StreamEngine::DrainReady() {
  return reorder_.ForEachReady([this](const TripEvent& event) {
    dirty_ = true;
    return window_.Ingest(event);
  });
}

Result<std::shared_ptr<const WindowSnapshot>> StreamEngine::Snapshot() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  // The reuse path changes nothing, so it is not logged; replay reaches
  // the same (dirty, published) state and skips it identically.
  if (!dirty_) {
    auto current = publisher_.Current();
    if (current) return current;
  }
  WalRecord record;
  record.type = WalRecordType::kSnapshot;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return SnapshotInternal();
}

Result<std::shared_ptr<const WindowSnapshot>>
StreamEngine::SnapshotInternal() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  if (!dirty_) {
    auto current = publisher_.Current();
    if (current) return current;
  }
  // A delta desync (see delta_desync_count) means the live counters and
  // the published graph may disagree; one full rebuild resynchronizes
  // them. The dirty set is still drained so tracking re-arms against
  // the new baseline.
  const uint64_t desyncs =
      static_cast<uint64_t>(window_.delta_desync_count());
  const bool desynced = desyncs != desyncs_at_last_freeze_;
  // The dirty set is drained (and tracking re-armed) on every freeze, so
  // it describes exactly the changes since the previous published epoch —
  // the delta freeze's baseline. The first freeze, an overflowed set, or
  // a large dirty fraction all fall back to a full rebuild inside
  // FreezeSnapshotDelta. With deltas disabled the window is never
  // drained at all, so tracking stays unarmed and ingest keeps its
  // zero-bookkeeping hot path.
  WindowDirtySet changes;
  if (config_.snapshot_delta.enabled) changes = window_.DrainDirty();
  bool used_delta = false;
  auto previous = publisher_.Current();
  Result<WindowSnapshot> frozen =
      config_.snapshot_delta.enabled && previous != nullptr && !desynced
          ? FreezeSnapshotDelta(window_, *previous, changes,
                                config_.projection, station_index_,
                                config_.snapshot_delta, &used_delta)
          : FreezeSnapshot(window_, config_.projection, station_index_);
  if (!frozen.ok()) {
    if (config_.snapshot_delta.enabled) {
      // The drained changes are lost to tracking; a later delta against
      // the still-older published epoch would silently miss them, so
      // the next freeze must take the full path.
      window_.MarkDirtyTrackingIncomplete();
    }
    return frozen.status();
  }
  (used_delta ? delta_freeze_count_ : full_freeze_count_)
      .fetch_add(1, std::memory_order_relaxed);
  desyncs_at_last_freeze_ = desyncs;
  dirty_ = false;
  return publisher_.Publish(std::move(*frozen));
}

Result<RefreshOutcome> StreamEngine::DetectCurrent() {
  // The default spec is logged as a flag, not serialized: replay reads
  // it from the recovering engine's config, which the fingerprint check
  // already pins to the original.
  WalRecord record;
  record.type = WalRecordType::kDetect;
  record.default_spec = true;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return DetectInternal(config_.detection);
}

Result<RefreshOutcome> StreamEngine::DetectCurrent(
    const community::DetectSpec& spec) {
  WalRecord record;
  record.type = WalRecordType::kDetect;
  record.default_spec = false;
  record.spec = spec;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return DetectInternal(spec);
}

Result<RefreshOutcome> StreamEngine::DetectInternal(
    const community::DetectSpec& spec) {
  BIKEGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<const WindowSnapshot> snap,
                             SnapshotInternal());
  return tracker_.Refresh(snap->graph, spec);
}

Status StreamEngine::SyncWal() {
  if (!config_.durability.enabled) return Status::OK();
  if (!durability_status_.ok()) return durability_status_;
  return wal_->Sync();
}

EngineCheckpoint StreamEngine::CaptureState() const {
  EngineCheckpoint c;
  c.wal_seq = wal_seq_;
  c.station_count = config_.station_count;
  c.window_seconds = config_.window_seconds;
  c.max_lateness_seconds = config_.max_lateness_seconds;
  c.late_policy = static_cast<uint8_t>(config_.late_policy);
  c.suppress_duplicates = config_.suppress_duplicate_rentals ? 1 : 0;
  c.flushed = flushed_ ? 1 : 0;
  const auto current = publisher_.Current();
  c.snapshot_clean = (!dirty_ && current != nullptr) ? 1 : 0;
  c.publisher_epoch = publisher_.epoch();
  if (c.snapshot_clean != 0) {
    c.published_window_start_seconds =
        current->window_start.seconds_since_epoch();
    c.published_window_end_seconds =
        current->window_end.seconds_since_epoch();
  }
  c.delta_freeze_count = delta_freeze_count_.load(std::memory_order_relaxed);
  c.full_freeze_count = full_freeze_count_.load(std::memory_order_relaxed);
  c.desyncs_published = desyncs_at_last_freeze_;
  c.reorder = reorder_.ExportState();
  c.window = window_.ExportState();
  c.tracker = tracker_.ExportState();
  return c;
}

Status StreamEngine::Checkpoint() {
  if (!config_.durability.enabled) {
    return Status::FailedPrecondition(
        "Checkpoint() requires durability.enabled");
  }
  if (!durability_status_.ok()) return durability_status_;
  // Sync first: a checkpoint claiming wal_seq N with record N still in
  // the write buffer would, after a crash, restore to a state the log
  // cannot re-derive.
  BIKEGRAPH_RETURN_NOT_OK(wal_->Sync());
  BIKEGRAPH_RETURN_NOT_OK(
      WriteCheckpoint(config_.durability.directory, CaptureState()));
  uint64_t oldest_kept = 0;
  BIKEGRAPH_RETURN_NOT_OK(PruneCheckpoints(config_.durability.directory,
                                           config_.durability.checkpoints_kept,
                                           &oldest_kept));
  return PruneWalSegments(config_.durability.directory, oldest_kept);
}

Status StreamEngine::RestoreFromCheckpoint(
    const EngineCheckpoint& checkpoint) {
  BIKEGRAPH_RETURN_NOT_OK(reorder_.RestoreState(checkpoint.reorder));
  BIKEGRAPH_RETURN_NOT_OK(window_.RestoreState(checkpoint.window));
  tracker_.RestoreState(checkpoint.tracker);
  flushed_ = checkpoint.flushed != 0;
  delta_freeze_count_.store(checkpoint.delta_freeze_count,
                            std::memory_order_relaxed);
  full_freeze_count_.store(checkpoint.full_freeze_count,
                           std::memory_order_relaxed);
  desyncs_at_last_freeze_ = checkpoint.desyncs_published;
  if (checkpoint.snapshot_clean != 0 && checkpoint.publisher_epoch > 0) {
    // The published snapshot was current at checkpoint time. Rebuild it
    // from the restored window (a full freeze is bit-identical to
    // whatever path originally produced it), restamp its original epoch
    // and window bounds, and republish — readers and the delta-freeze
    // baseline resume exactly where the crashed run left them.
    publisher_.RestoreEpoch(checkpoint.publisher_epoch - 1);
    BIKEGRAPH_ASSIGN_OR_RETURN(
        WindowSnapshot snap,
        FreezeSnapshot(window_, config_.projection, station_index_));
    snap.window_start = CivilTime(checkpoint.published_window_start_seconds);
    snap.window_end = CivilTime(checkpoint.published_window_end_seconds);
    publisher_.Publish(std::move(snap));
    // Arm dirty tracking so replayed and resumed freezes can delta
    // against the republished baseline (RestoreState leaves it unarmed).
    if (config_.snapshot_delta.enabled) window_.DrainDirty();
    dirty_ = false;
  } else {
    // Nothing published, or the window had moved past the publish: the
    // next freeze takes the full path against an empty baseline.
    publisher_.RestoreEpoch(checkpoint.publisher_epoch);
    dirty_ = true;
  }
  return Status::OK();
}

Status StreamEngine::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kEvent: {
      if (flushed_) {
        return Status::FailedPrecondition(
            "Ingest after Flush: the stream was already finalized");
      }
      const auto n = static_cast<int64_t>(config_.station_count);
      if (record.event.from_station < 0 || record.event.from_station >= n ||
          record.event.to_station < 0 || record.event.to_station >= n) {
        return Status::InvalidArgument("trip event endpoint out of range");
      }
      return IngestInternal(record.event);
    }
    case WalRecordType::kAdvance:
      return AdvanceInternal(CivilTime(record.watermark_seconds));
    case WalRecordType::kFlush:
      if (flushed_) return Status::OK();
      return FlushInternal();
    case WalRecordType::kSnapshot:
      return SnapshotInternal().status();
    case WalRecordType::kDetect:
      return DetectInternal(record.default_spec ? config_.detection
                                                : record.spec)
          .status();
  }
  return Status::DataLoss("unknown WAL record type");
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Recover(
    StreamEngineConfig config, RecoveryStats* stats) {
  if (stats != nullptr) *stats = RecoveryStats{};
  if (!config.durability.enabled || config.durability.directory.empty()) {
    return Status::InvalidArgument(
        "Recover() requires durability.enabled and a directory");
  }
  const std::string directory = config.durability.directory;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("create durability directory '" + directory +
                           "': " + ec.message());
  }
  BIKEGRAPH_ASSIGN_OR_RETURN(CheckpointLoadResult loaded,
                             LoadNewestCheckpoint(directory));
  BIKEGRAPH_ASSIGN_OR_RETURN(WalReadResult wal,
                             ReadWal(directory, /*repair_torn_tail=*/true));

  auto engine = std::unique_ptr<StreamEngine>(
      new StreamEngine(RecoverTag{}, std::move(config)));
  uint64_t base_seq = 0;
  if (loaded.found) {
    const EngineCheckpoint& c = loaded.checkpoint;
    if (c.station_count != engine->config_.station_count ||
        c.window_seconds != engine->config_.window_seconds ||
        c.max_lateness_seconds != engine->config_.max_lateness_seconds ||
        c.late_policy !=
            static_cast<uint8_t>(engine->config_.late_policy) ||
        c.suppress_duplicates !=
            (engine->config_.suppress_duplicate_rentals ? 1 : 0)) {
      return Status::FailedPrecondition(
          "checkpoint '" + loaded.path +
          "' was written under a different engine config (station count, "
          "window, lateness, or policies differ)");
    }
    BIKEGRAPH_RETURN_NOT_OK(engine->RestoreFromCheckpoint(c));
    base_seq = c.wal_seq;
  }
  // Records below the checkpoint are already folded into it; records
  // above it must start exactly at base_seq + 1 or the log has a hole
  // no replay can bridge.
  if (!wal.records.empty() && wal.first_seq > base_seq + 1) {
    return Status::DataLoss(
        "WAL records missing between checkpoint and first surviving "
        "segment");
  }
  uint64_t replayed = 0;
  uint64_t replay_errors = 0;
  uint64_t seq = wal.first_seq;
  for (const WalRecord& record : wal.records) {
    if (seq > base_seq) {
      if (!engine->ApplyWalRecord(record).ok()) ++replay_errors;
      ++replayed;
    }
    ++seq;
  }
  const uint64_t resume_seq = std::max(base_seq, wal.last_seq);
  engine->wal_seq_ = resume_seq;

  if (wal.last_seq >= base_seq && !wal.tail_segment_path.empty()) {
    // The tail segment's surviving records run through resume_seq, so
    // appending resume_seq + 1 at its (repaired) end keeps the in-file
    // sequence contiguous.
    BIKEGRAPH_ASSIGN_OR_RETURN(
        engine->wal_,
        WalWriter::Open(engine->config_.durability, resume_seq + 1,
                        wal.tail_segment_path, wal.tail_segment_bytes));
  } else {
    // Every surviving record (if any) is at or below the checkpoint —
    // appending to the tail would tear its sequence. The checkpoint
    // carries all their state, so drop the segments and start fresh.
    for (const auto& entry : fs::directory_iterator(directory, ec)) {
      if (IsWalSegmentName(entry.path().filename().string())) {
        fs::remove(entry.path(), ec);
      }
    }
    BIKEGRAPH_ASSIGN_OR_RETURN(
        engine->wal_,
        WalWriter::Open(engine->config_.durability, resume_seq + 1));
  }
  if (stats != nullptr) {
    stats->used_checkpoint = loaded.found;
    stats->checkpoint_seq = base_seq;
    stats->skipped_checkpoints = loaded.skipped;
    stats->replayed_records = replayed;
    stats->replay_errors = replay_errors;
    stats->recovered_seq = resume_seq;
    stats->truncated_bytes = wal.truncated_bytes;
  }
  return engine;
}

}  // namespace bikegraph::stream
