#include "stream/engine.h"

namespace bikegraph::stream {

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)),
      reorder_(ReorderBufferOptions{config_.max_lateness_seconds,
                                    config_.late_policy,
                                    config_.suppress_duplicate_rentals,
                                    config_.reorder_backend}),
      window_(WindowGraphOptions{config_.station_count,
                                 config_.window_seconds}),
      tracker_(config_.refresh) {
  if (config_.station_positions.size() >= config_.station_count) {
    // Index exactly the station universe; extra entries are not station
    // ids and must not leak into snapshot spatial queries.
    station_index_ = BuildFrozenStationIndex(
        {config_.station_positions.begin(),
         config_.station_positions.begin() +
             static_cast<long>(config_.station_count)});
  }
}

Status StreamEngine::Ingest(const TripEvent& event) {
  // Fail fast on a truncated positions table instead of hours later at
  // the first Snapshot() of a live run.
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  // Validate endpoints at arrival: an out-of-range event parked in the
  // reorder buffer would otherwise fail a horizon later, far from the
  // caller that produced it.
  const auto n = static_cast<int64_t>(config_.station_count);
  if (event.from_station < 0 || event.from_station >= n ||
      event.to_station < 0 || event.to_station >= n) {
    return Status::InvalidArgument("trip event endpoint out of range");
  }
  BIKEGRAPH_RETURN_NOT_OK(reorder_.Push(event));
  return DrainReady();
}

Status StreamEngine::Advance(CivilTime watermark) {
  // Raise the reorder watermark first: events it makes releasable carry
  // start times <= watermark - max_lateness, so they enter the window
  // before it expires anything at the new watermark.
  reorder_.AdvanceWatermark(watermark);
  BIKEGRAPH_RETURN_NOT_OK(DrainReady());
  const size_t before = window_.trip_count();
  const CivilTime old_mark = window_.watermark();
  window_.Advance(watermark);
  if (window_.trip_count() != before || window_.watermark() != old_mark) {
    dirty_ = true;
  }
  return Status::OK();
}

Status StreamEngine::Flush() {
  reorder_.Flush();
  return DrainReady();
}

Status StreamEngine::DrainReady() {
  return reorder_.ForEachReady([this](const TripEvent& event) {
    dirty_ = true;
    return window_.Ingest(event);
  });
}

Result<std::shared_ptr<const WindowSnapshot>> StreamEngine::Snapshot() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  if (!dirty_) {
    auto current = publisher_.Current();
    if (current) return current;
  }
  // The dirty set is drained (and tracking re-armed) on every freeze, so
  // it describes exactly the changes since the previous published epoch —
  // the delta freeze's baseline. The first freeze, an overflowed set, or
  // a large dirty fraction all fall back to a full rebuild inside
  // FreezeSnapshotDelta. With deltas disabled the window is never
  // drained at all, so tracking stays unarmed and ingest keeps its
  // zero-bookkeeping hot path.
  WindowDirtySet changes;
  if (config_.snapshot_delta.enabled) changes = window_.DrainDirty();
  bool used_delta = false;
  auto previous = publisher_.Current();
  Result<WindowSnapshot> frozen =
      config_.snapshot_delta.enabled && previous != nullptr
          ? FreezeSnapshotDelta(window_, *previous, changes,
                                config_.projection, station_index_,
                                config_.snapshot_delta, &used_delta)
          : FreezeSnapshot(window_, config_.projection, station_index_);
  if (!frozen.ok()) {
    if (config_.snapshot_delta.enabled) {
      // The drained changes are lost to tracking; a later delta against
      // the still-older published epoch would silently miss them, so
      // the next freeze must take the full path.
      window_.MarkDirtyTrackingIncomplete();
    }
    return frozen.status();
  }
  ++(used_delta ? delta_freeze_count_ : full_freeze_count_);
  dirty_ = false;
  return publisher_.Publish(std::move(*frozen));
}

Result<RefreshOutcome> StreamEngine::DetectCurrent(
    const community::DetectSpec& spec) {
  BIKEGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<const WindowSnapshot> snap,
                             Snapshot());
  return tracker_.Refresh(snap->graph, spec);
}

}  // namespace bikegraph::stream
