#include "stream/engine.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "core/logging.h"
#include "stream/spsc_ring.h"

namespace bikegraph::stream {

namespace {

namespace fs = std::filesystem;

bool IsWalSegmentName(const std::string& name) {
  return name.size() == 28 && name.rfind("wal-", 0) == 0 &&
         name.compare(24, 4, ".log") == 0;
}

}  // namespace

namespace detail {

/// One entry on a shard's command ring. Every command carries the
/// caller's global reorder watermark (INT64_MIN = nothing to forward),
/// applied before the kind-specific handling: a shard that last saw an
/// event an hour of stream time ago must still judge lateness and
/// release readiness against stream-wide time, not its own stale clock.
struct ShardCommand {
  enum class Kind : uint8_t { kEvent, kAdvance, kFlush };
  Kind kind = Kind::kEvent;
  TripEvent event;
  int64_t reorder_wm = INT64_MIN;
  /// Window advance target (INT64_MIN = none): set by explicit Advance
  /// calls and by the barrier's phase 2, which aligns every shard
  /// window to the merged watermark before a freeze.
  int64_t window_wm = INT64_MIN;
};

/// One slice of the stream vertical: a reorder buffer and window graph
/// owning a disjoint set of station pairs, plus the SPSC ring and worker
/// thread that feed it in sharded mode.
///
/// Ownership of fields by thread: `ring` is the SPSC hand-off;
/// `acked`/`stop` are the only cross-thread atomics. Everything else
/// (reorder, window, dirty, first_error, applied) is written by whichever
/// thread runs Apply — the worker once started, the ingest thread before
/// that and in single-shard mode — and read by the ingest thread only at
/// quiescent points: `acked == pushed` (acquire) proves every command's
/// effects happened-before the read, and caller-side writes made while
/// quiescent become visible to the worker through the next ring push
/// (release tail store / acquire tail load). No locks, no races — the
/// shard suites run under TSan in CI (tools/ci.sh).
class EngineShard {
 public:
  explicit EngineShard(const StreamEngineConfig& config)
      : reorder(ReorderBufferOptions{config.max_lateness_seconds,
                                     config.late_policy,
                                     config.suppress_duplicate_rentals,
                                     config.reorder_backend,
                                     config.max_duplicate_rental_ids}),
        window(WindowGraphOptions{config.station_count,
                                  config.window_seconds}),
        ring(kRingCapacity) {}

  /// Applies one command. The sequence per kind mirrors the pre-sharding
  /// engine internals exactly (kEvent = IngestInternal, kAdvance =
  /// AdvanceInternal, kFlush = FlushInternal), which is what makes a
  /// one-shard engine bit-identical to the legacy single writer.
  Status Apply(const ShardCommand& cmd) {
    ++applied;
    if (cmd.reorder_wm != INT64_MIN) {
      reorder.AdvanceWatermark(CivilTime(cmd.reorder_wm));
    }
    switch (cmd.kind) {
      case ShardCommand::Kind::kEvent: {
        const Status status = reorder.Push(cmd.event);
        if (!status.ok()) return status;
        return DrainReady();
      }
      case ShardCommand::Kind::kAdvance: {
        // Releases before expiry: events the new watermark makes
        // releasable carry start times at or before it, so they enter
        // the window before it expires anything at the new mark.
        BIKEGRAPH_RETURN_NOT_OK(DrainReady());
        if (cmd.window_wm != INT64_MIN) {
          const size_t before = window.trip_count();
          const CivilTime old_mark = window.watermark();
          window.Advance(CivilTime(cmd.window_wm));
          if (window.trip_count() != before ||
              window.watermark() != old_mark) {
            dirty = true;
          }
        }
        return Status::OK();
      }
      case ShardCommand::Kind::kFlush:
        reorder.Flush();
        return DrainReady();
    }
    return Status::DataLoss("unknown shard command");
  }

  /// Applies `cmd` and acknowledges it: a failure parks in first_error
  /// (the engine surfaces it at the next barrier), and the release
  /// increment of `acked` publishes every effect to the waiting ingest
  /// thread. Shared by the worker loop and the inline replay path.
  void Execute(const ShardCommand& cmd) {
    const Status status = Apply(cmd);
    if (!status.ok() && first_error.ok()) first_error = status;
    acked.fetch_add(1, std::memory_order_release);
  }

  void Start() {
    worker = std::thread([this] {
      ShardCommand cmd;
      for (;;) {
        if (ring.TryPop(cmd)) {
          Execute(cmd);
          continue;
        }
        if (stop.load(std::memory_order_acquire)) {
          // Drain anything that raced in ahead of the stop flag so a
          // shutdown never drops accepted commands.
          if (ring.TryPop(cmd)) {
            Execute(cmd);
            continue;
          }
          break;
        }
        std::this_thread::yield();
      }
    });
  }

  void Stop() {
    if (!worker.joinable()) return;
    stop.store(true, std::memory_order_release);
    worker.join();
  }

  ReorderBuffer reorder;
  SlidingWindowGraph window;
  /// True when this shard's window changed since the flag was last
  /// collected (folded into the engine's dirty_ at barriers).
  bool dirty = false;
  /// First deferred command failure; surfaced once, in shard order.
  Status first_error = Status::OK();
  /// Commands applied over this shard's lifetime — the shard's private
  /// sequence space, persisted per shard in EngineCheckpoint.
  uint64_t applied = 0;
  SpscRing<ShardCommand> ring;
  /// Ingest-thread-side count of commands dispatched; quiescence is
  /// acked == pushed.
  uint64_t pushed = 0;
  alignas(64) std::atomic<uint64_t> acked{0};
  std::atomic<bool> stop{false};
  std::thread worker;

 private:
  /// Ring slots per shard: deep enough that a freeze-length consumer
  /// stall does not immediately backpressure ingest, small enough that
  /// a stuck worker bounds queued memory.
  static constexpr size_t kRingCapacity = 1024;

  Status DrainReady() {
    return reorder.ForEachReady([this](const TripEvent& event) {
      dirty = true;
      return window.Ingest(event);
    });
  }
};

}  // namespace detail

StreamEngine::StreamEngine(RecoverTag, StreamEngineConfig config)
    : config_(std::move(config)),
      router_(config_.shard_count),
      tracker_(config_.refresh) {
  // 0 means "no sharding", i.e. one shard (mirrors ShardRouter's clamp).
  if (config_.shard_count == 0) config_.shard_count = 1;
  shards_.reserve(config_.shard_count);
  for (size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<detail::EngineShard>(config_));
  }
  if (config_.station_positions.size() >= config_.station_count) {
    // Index exactly the station universe; extra entries are not station
    // ids and must not leak into snapshot spatial queries.
    station_index_ = BuildFrozenStationIndex(
        {config_.station_positions.begin(),
         config_.station_positions.begin() +
             static_cast<long>(config_.station_count)});
  }
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : StreamEngine(RecoverTag{}, std::move(config)) {
  InitDurability();
  StartShardWorkers();
}

StreamEngine::~StreamEngine() { StopShardWorkers(); }

void StreamEngine::StartShardWorkers() {
  if (shards_.size() <= 1) return;
  for (auto& shard : shards_) shard->Start();
  started_ = true;
}

void StreamEngine::StopShardWorkers() {
  if (!started_) return;
  for (auto& shard : shards_) shard->Stop();
  started_ = false;
}

void StreamEngine::InitDurability() {
  if (!config_.durability.enabled) return;
  if (config_.durability.directory.empty()) {
    durability_status_ =
        Status::InvalidArgument("durability.directory must be set");
    return;
  }
  std::error_code ec;
  fs::create_directories(config_.durability.directory, ec);
  if (ec) {
    durability_status_ = Status::IOError(
        "create durability directory '" + config_.durability.directory +
        "': " + ec.message());
    return;
  }
  if (DirectoryHasDurableState(config_.durability.directory)) {
    durability_status_ = Status::FailedPrecondition(
        "durability directory '" + config_.durability.directory +
        "' already holds WAL/checkpoint state; use StreamEngine::Recover() "
        "to resume it (or point a fresh engine at an empty directory)");
    return;
  }
  auto writer = WalWriter::Open(config_.durability, /*next_seq=*/1);
  if (!writer.ok()) {
    durability_status_ = writer.status();
    return;
  }
  wal_ = std::move(*writer);
}

void StreamEngine::EnterDegradedMode(const Status& reason) {
  degraded_ = true;
  degrade_reason_ = reason;
  if (wal_) {
    wal_retry_base_ += wal_->retry_count();
    wal_transient_base_ += wal_->transient_recovered_count();
    wal_enospc_base_ += wal_->enospc_prune_count();
  }
  BIKEGRAPH_LOG(Error)
      << "durable engine DEGRADED to non-durable mode: "
      << reason.ToString() << " — ingestion continues, the log under '"
      << config_.durability.directory
      << "' is abandoned and marked (Recover() will refuse it)";
  // Marker before dropping the writer: the directory must be loud before
  // the first un-logged op can possibly be applied.
  WriteDegradedMarker(config_.durability, reason);
  wal_.reset();
}

Status StreamEngine::LogRecord(const WalRecord& record) {
  if (!config_.durability.enabled || degraded_) return Status::OK();
  if (!durability_status_.ok()) return durability_status_;
  const Status status = wal_->Append(record);
  if (!status.ok()) {
    if (config_.durability.faults.degrade_on_exhausted) {
      // Degrade policy: availability over durability. The op proceeds
      // un-logged; the marker keeps the loss loud at recovery time.
      EnterDegradedMode(status);
      return Status::OK();
    }
    // Poison policy (default): a failed append poisons the writer; every
    // later durable call surfaces the same error instead of silently
    // diverging from disk.
    durability_status_ = status;
    return status;
  }
  ++wal_seq_;
  return Status::OK();
}

Status StreamEngine::ApplySingle(const detail::ShardCommand& cmd) {
  detail::EngineShard& shard = *shards_[0];
  const Status status = shard.Apply(cmd);
  // Eager dirty collection — the legacy per-call dirty_ semantics that
  // CaptureState's snapshot_clean flag depends on.
  if (shard.dirty) {
    dirty_ = true;
    shard.dirty = false;
  }
  // With one shard the buffer is authoritative: mirror its watermark
  // (which also folds in drops and suppressions the caller-side raise
  // rule cannot see) so capture/restore round-trips exactly.
  global_reorder_wm_ = shard.reorder.watermark().seconds_since_epoch();
  return status;
}

void StreamEngine::Deliver(size_t shard_index,
                           const detail::ShardCommand& cmd) {
  detail::EngineShard& shard = *shards_[shard_index];
  ++shard.pushed;
  if (started_) {
    // A full ring is backpressure: the slow consumer throttles ingest.
    while (!shard.ring.TryPush(cmd)) std::this_thread::yield();
    return;
  }
  // WAL replay / pre-start: apply on this thread with the identical
  // deferred-error bookkeeping, so recovery is deterministic without
  // worker scheduling in the loop.
  shard.Execute(cmd);
}

void StreamEngine::WaitQuiescent() {
  for (const auto& shard : shards_) {
    while (shard->acked.load(std::memory_order_acquire) < shard->pushed) {
      std::this_thread::yield();
    }
  }
}

Status StreamEngine::CollectShardState() {
  Status first = Status::OK();
  for (const auto& shard : shards_) {
    if (shard->dirty) {
      dirty_ = true;
      shard->dirty = false;
    }
    if (!shard->first_error.ok()) {
      if (first.ok()) first = shard->first_error;
      shard->first_error = Status::OK();
    }
  }
  return first;
}

Status StreamEngine::BarrierQuiesce() {
  // Phase 1: align every shard's reorder clock to stream-wide time and
  // drain what that releases — a shard that last saw an event long ago
  // may hold events the global watermark has since made releasable.
  detail::ShardCommand align;
  align.kind = detail::ShardCommand::Kind::kAdvance;
  align.reorder_wm = global_reorder_wm_;
  for (size_t i = 0; i < shards_.size(); ++i) Deliver(i, align);
  WaitQuiescent();

  // Phase 2: the single-writer window watermark is the max over released
  // event starts and explicit advances; each shard saw only a subset, so
  // the merged value is the max across shards. Advance every window to
  // it so expiry and window_start are uniform before a freeze reads
  // them. (Reading shard state here is safe: quiescence established the
  // happens-before edge, and workers are idle until we push again.)
  int64_t window_wm = INT64_MIN;
  for (const auto& shard : shards_) {
    window_wm = std::max(window_wm,
                         shard->window.watermark().seconds_since_epoch());
  }
  if (window_wm != INT64_MIN) {
    detail::ShardCommand advance;
    advance.kind = detail::ShardCommand::Kind::kAdvance;
    advance.reorder_wm = global_reorder_wm_;
    advance.window_wm = window_wm;
    for (size_t i = 0; i < shards_.size(); ++i) Deliver(i, advance);
    WaitQuiescent();
  }
  return CollectShardState();
}

Status StreamEngine::Ingest(const TripEvent& event) {
  if (flushed_) {
    return Status::FailedPrecondition(
        "Ingest after Flush: the stream was already finalized");
  }
  // Fail fast on a truncated positions table instead of hours later at
  // the first Snapshot() of a live run.
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  // Validate endpoints at arrival: an out-of-range event parked in the
  // reorder buffer would otherwise fail a horizon later, far from the
  // caller that produced it. Rejected events are never logged — the WAL
  // records intent that passed admission, so replay cannot diverge on
  // validation.
  const auto n = static_cast<int64_t>(config_.station_count);
  if (event.from_station < 0 || event.from_station >= n ||
      event.to_station < 0 || event.to_station >= n) {
    return Status::InvalidArgument("trip event endpoint out of range");
  }
  WalRecord record;
  record.type = WalRecordType::kEvent;
  record.event = event;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return IngestInternal(event);
}

Status StreamEngine::IngestInternal(const TripEvent& event) {
  detail::ShardCommand cmd;
  cmd.kind = detail::ShardCommand::Kind::kEvent;
  cmd.event = event;
  if (shards_.size() == 1) return ApplySingle(cmd);
  // Stream-wide watermark bookkeeping, mirroring ReorderBuffer::Push's
  // raise rule exactly: an arrival raises the watermark iff it is not
  // late and moves time forward. The command carries the *pre-event*
  // value — the owning shard's Push then performs the identical raise
  // the single buffer would have, counters and all. (One caveat, see
  // docs/STREAMING.md: with duplicate suppression on, a redelivered id
  // with a novel newer start raises this watermark but would not have
  // raised the single buffer's.)
  cmd.reorder_wm = global_reorder_wm_;
  const int64_t start = event.start_time.seconds_since_epoch();
  const bool late =
      global_reorder_wm_ != INT64_MIN &&
      start < global_reorder_wm_ - config_.max_lateness_seconds;
  if (!late && start > global_reorder_wm_) global_reorder_wm_ = start;
  Deliver(router_.OwnerOfPair(event.from_station, event.to_station), cmd);
  return Status::OK();
}

Status StreamEngine::Advance(CivilTime watermark) {
  WalRecord record;
  record.type = WalRecordType::kAdvance;
  record.watermark_seconds = watermark.seconds_since_epoch();
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return AdvanceInternal(watermark);
}

Status StreamEngine::AdvanceInternal(CivilTime watermark) {
  const int64_t target = watermark.seconds_since_epoch();
  if (target > global_reorder_wm_) global_reorder_wm_ = target;
  detail::ShardCommand cmd;
  cmd.kind = detail::ShardCommand::Kind::kAdvance;
  cmd.reorder_wm = global_reorder_wm_;
  cmd.window_wm = target;
  if (shards_.size() == 1) return ApplySingle(cmd);
  // Broadcast without waiting: an advance is pipelined like any event,
  // and its errors (none in practice — DrainReady failures) surface at
  // the next barrier with everything else.
  for (size_t i = 0; i < shards_.size(); ++i) Deliver(i, cmd);
  return Status::OK();
}

Status StreamEngine::Flush() {
  if (flushed_) return Status::OK();
  WalRecord record;
  record.type = WalRecordType::kFlush;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return FlushInternal();
}

Status StreamEngine::FlushInternal() {
  flushed_ = true;
  detail::ShardCommand cmd;
  cmd.kind = detail::ShardCommand::Kind::kFlush;
  if (shards_.size() == 1) return ApplySingle(cmd);
  // A barrier point: align clocks, drain every shard completely, and
  // surface any deferred error — end-of-stream must leave nothing
  // parked and nothing unsaid.
  cmd.reorder_wm = global_reorder_wm_;
  for (size_t i = 0; i < shards_.size(); ++i) Deliver(i, cmd);
  WaitQuiescent();
  // The flush released each shard's held events, but a shard whose
  // newest event lags the stream still has trips the single-writer
  // window would already have expired. Advance every window to the
  // merged watermark (phase 2 of the freeze barrier; the sealed reorder
  // buffers are left alone) so post-flush live counts match the
  // single-writer engine exactly.
  int64_t window_wm = INT64_MIN;
  for (const auto& shard : shards_) {
    window_wm = std::max(window_wm,
                         shard->window.watermark().seconds_since_epoch());
  }
  if (window_wm != INT64_MIN) {
    detail::ShardCommand align;
    align.kind = detail::ShardCommand::Kind::kAdvance;
    align.window_wm = window_wm;
    for (size_t i = 0; i < shards_.size(); ++i) Deliver(i, align);
    WaitQuiescent();
  }
  return CollectShardState();
}

Result<std::shared_ptr<const WindowSnapshot>> StreamEngine::Snapshot() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  if (shards_.size() == 1) {
    // The reuse path changes nothing, so it is not logged; replay
    // reaches the same (dirty, published) state and skips it
    // identically. Sharded engines must not take this shortcut: even a
    // no-change Snapshot runs the barrier, which moves checkpointed
    // per-shard watermarks, so every sharded Snapshot is logged.
    if (!dirty_) {
      auto current = publisher_.Current();
      if (current) return current;
    }
  }
  WalRecord record;
  record.type = WalRecordType::kSnapshot;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return SnapshotInternal();
}

Result<std::shared_ptr<const WindowSnapshot>>
StreamEngine::SnapshotInternal() {
  if (!config_.station_positions.empty() &&
      config_.station_positions.size() < config_.station_count) {
    return Status::InvalidArgument(
        "station_positions must cover every station id");
  }
  if (shards_.size() > 1) {
    BIKEGRAPH_RETURN_NOT_OK(BarrierQuiesce());
  }
  if (!dirty_) {
    auto current = publisher_.Current();
    if (current) return current;
  }
  // A delta desync (see delta_desync_count) means the live counters and
  // the published graph may disagree; one full rebuild resynchronizes
  // them. The dirty set is still drained so tracking re-arms against
  // the new baseline.
  const uint64_t desyncs = static_cast<uint64_t>(delta_desync_count());
  const bool desynced = desyncs != desyncs_at_last_freeze_;
  // The dirty set is drained (and tracking re-armed) on every freeze, so
  // it describes exactly the changes since the previous published epoch —
  // the delta freeze's baseline. The first freeze, an overflowed set, or
  // a large dirty fraction all fall back to a full rebuild inside
  // FreezeSnapshotDelta. With deltas disabled the window is never
  // drained at all, so tracking stays unarmed and ingest keeps its
  // zero-bookkeeping hot path. Sharded: per-shard drains merge in shard
  // order into the one set the delta freeze patches.
  WindowDirtySet changes;
  if (config_.snapshot_delta.enabled) {
    if (shards_.size() == 1) {
      changes = shards_[0]->window.DrainDirty();
    } else {
      std::vector<WindowDirtySet> parts;
      parts.reserve(shards_.size());
      for (const auto& shard : shards_) {
        parts.push_back(shard->window.DrainDirty());
      }
      changes = MergeDirtySets(parts);
    }
  }
  bool used_delta = false;
  auto previous = publisher_.Current();
  const bool try_delta =
      config_.snapshot_delta.enabled && previous != nullptr && !desynced;
  Result<WindowSnapshot> frozen = [&]() -> Result<WindowSnapshot> {
    if (shards_.size() == 1) {
      const SlidingWindowGraph& window = shards_[0]->window;
      return try_delta
                 ? FreezeSnapshotDelta(window, *previous, changes,
                                       config_.projection, station_index_,
                                       config_.snapshot_delta, &used_delta)
                 : FreezeSnapshot(window, config_.projection,
                                  station_index_);
    }
    std::vector<const SlidingWindowGraph*> parts;
    parts.reserve(shards_.size());
    for (const auto& shard : shards_) parts.push_back(&shard->window);
    const ShardedWindowView view(std::move(parts));
    return try_delta
               ? FreezeSnapshotDelta(view, *previous, changes,
                                     config_.projection, station_index_,
                                     config_.snapshot_delta, &used_delta)
               : FreezeSnapshot(view, config_.projection, station_index_);
  }();
  if (!frozen.ok()) {
    if (config_.snapshot_delta.enabled) {
      // The drained changes are lost to tracking; a later delta against
      // the still-older published epoch would silently miss them, so
      // the next freeze must take the full path.
      for (const auto& shard : shards_) {
        shard->window.MarkDirtyTrackingIncomplete();
      }
    }
    return frozen.status();
  }
  (used_delta ? delta_freeze_count_ : full_freeze_count_)
      .fetch_add(1, std::memory_order_relaxed);
  desyncs_at_last_freeze_ = desyncs;
  dirty_ = false;
  return publisher_.Publish(std::move(*frozen));
}

Result<RefreshOutcome> StreamEngine::DetectCurrent() {
  // The default spec is logged as a flag, not serialized: replay reads
  // it from the recovering engine's config, which the fingerprint check
  // already pins to the original.
  WalRecord record;
  record.type = WalRecordType::kDetect;
  record.default_spec = true;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return DetectInternal(config_.detection);
}

Result<RefreshOutcome> StreamEngine::DetectCurrent(
    const community::DetectSpec& spec) {
  WalRecord record;
  record.type = WalRecordType::kDetect;
  record.default_spec = false;
  record.spec = spec;
  BIKEGRAPH_RETURN_NOT_OK(LogRecord(record));
  return DetectInternal(spec);
}

Result<RefreshOutcome> StreamEngine::DetectInternal(
    const community::DetectSpec& spec) {
  BIKEGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<const WindowSnapshot> snap,
                             SnapshotInternal());
  return tracker_.Refresh(snap->graph, spec);
}

Status StreamEngine::SyncWal() {
  if (!config_.durability.enabled || degraded_) return Status::OK();
  if (!durability_status_.ok()) return durability_status_;
  const Status status = wal_->Sync();
  if (!status.ok() && config_.durability.faults.degrade_on_exhausted) {
    // Surface this failure loudly (the caller asked for durability and
    // did not get it), but degrade so ingestion can continue.
    EnterDegradedMode(status);
  }
  return status;
}

const SlidingWindowGraph& StreamEngine::window() const {
  return shards_[0]->window;
}

const ReorderBuffer& StreamEngine::reorder() const {
  return shards_[0]->reorder;
}

CivilTime StreamEngine::watermark() const {
  CivilTime newest(INT64_MIN);
  for (const auto& shard : shards_) {
    if (shard->window.watermark() > newest) {
      newest = shard->window.watermark();
    }
  }
  return newest;
}

size_t StreamEngine::ingested_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->window.ingested_count();
  }
  return total;
}

size_t StreamEngine::trip_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->window.trip_count();
  return total;
}

size_t StreamEngine::expired_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->window.expired_count();
  return total;
}

uint64_t StreamEngine::reordered_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reorder.reordered_count();
  }
  return total;
}

uint64_t StreamEngine::late_dropped_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reorder.late_dropped_count();
  }
  return total;
}

uint64_t StreamEngine::duplicate_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reorder.duplicate_count();
  }
  return total;
}

size_t StreamEngine::buffered_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reorder.buffered_count();
  }
  return total;
}

uint64_t StreamEngine::duplicate_ids_high_water() const {
  uint64_t highest = 0;
  for (const auto& shard : shards_) {
    highest = std::max(highest, shard->reorder.duplicate_ids_high_water());
  }
  return highest;
}

uint64_t StreamEngine::duplicate_ids_evicted() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->reorder.duplicate_ids_evicted();
  }
  return total;
}

size_t StreamEngine::delta_desync_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->window.delta_desync_count();
  }
  return total;
}

Result<WindowSnapshot> StreamEngine::FreezeFull() const {
  if (shards_.size() == 1) {
    return FreezeSnapshot(shards_[0]->window, config_.projection,
                          station_index_);
  }
  std::vector<const SlidingWindowGraph*> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) parts.push_back(&shard->window);
  return FreezeSnapshot(ShardedWindowView(std::move(parts)),
                        config_.projection, station_index_);
}

EngineCheckpoint StreamEngine::CaptureState() const {
  EngineCheckpoint c;
  c.wal_seq = wal_seq_;
  c.station_count = config_.station_count;
  c.window_seconds = config_.window_seconds;
  c.max_lateness_seconds = config_.max_lateness_seconds;
  c.late_policy = static_cast<uint8_t>(config_.late_policy);
  c.suppress_duplicates = config_.suppress_duplicate_rentals ? 1 : 0;
  c.flushed = flushed_ ? 1 : 0;
  const auto current = publisher_.Current();
  c.snapshot_clean = (!dirty_ && current != nullptr) ? 1 : 0;
  c.publisher_epoch = publisher_.epoch();
  if (c.snapshot_clean != 0) {
    c.published_window_start_seconds =
        current->window_start.seconds_since_epoch();
    c.published_window_end_seconds =
        current->window_end.seconds_since_epoch();
  }
  c.delta_freeze_count = delta_freeze_count_.load(std::memory_order_relaxed);
  c.full_freeze_count = full_freeze_count_.load(std::memory_order_relaxed);
  c.desyncs_published = desyncs_at_last_freeze_;
  c.reorder = shards_[0]->reorder.ExportState();
  c.window = shards_[0]->window.ExportState();
  c.tracker = tracker_.ExportState();
  c.shard_count = shards_.size();
  c.shard_seqs.reserve(shards_.size());
  for (const auto& shard : shards_) c.shard_seqs.push_back(shard->applied);
  for (size_t i = 1; i < shards_.size(); ++i) {
    EngineCheckpoint::ShardComponents components;
    components.reorder = shards_[i]->reorder.ExportState();
    components.window = shards_[i]->window.ExportState();
    c.extra_shards.push_back(std::move(components));
  }
  return c;
}

Status StreamEngine::Checkpoint() {
  if (!config_.durability.enabled) {
    return Status::FailedPrecondition(
        "Checkpoint() requires durability.enabled");
  }
  if (degraded_) {
    return Status::FailedPrecondition(
        "Checkpoint() on a degraded (non-durable) engine: " +
        degrade_reason_.ToString());
  }
  if (!durability_status_.ok()) return durability_status_;
  // Quiesce the shards so the capture is a coherent cut of every
  // vertical. The barrier's own clock alignments are not logged, but
  // they are idempotent maxima the next barrier re-derives, so a replay
  // from an older checkpoint converges at its next barrier point.
  if (shards_.size() > 1) {
    BIKEGRAPH_RETURN_NOT_OK(BarrierQuiesce());
  }
  // Sync first: a checkpoint claiming wal_seq N with record N still in
  // the write buffer would, after a crash, restore to a state the log
  // cannot re-derive.
  const Status synced = wal_->Sync();
  if (!synced.ok()) {
    if (config_.durability.faults.degrade_on_exhausted) {
      EnterDegradedMode(synced);
    }
    return synced;
  }
  IoEnv* const env = config_.durability.io_env;
  // A commit failure is NOT a poison: WriteCheckpoint cleaned up its
  // temp, the previous checkpoint set is untouched, and the WAL is
  // synced through this point — the engine keeps running durable and a
  // later Checkpoint() simply tries again.
  BIKEGRAPH_RETURN_NOT_OK(
      WriteCheckpoint(config_.durability.directory, CaptureState(), env));
  uint64_t oldest_kept = 0;
  BIKEGRAPH_RETURN_NOT_OK(PruneCheckpoints(config_.durability.directory,
                                           config_.durability.checkpoints_kept,
                                           &oldest_kept, env));
  return PruneWalSegments(config_.durability.directory, oldest_kept,
                          /*pruned=*/nullptr, env);
}

Status StreamEngine::RestoreFromCheckpoint(
    const EngineCheckpoint& checkpoint) {
  BIKEGRAPH_RETURN_NOT_OK(
      shards_[0]->reorder.RestoreState(checkpoint.reorder));
  BIKEGRAPH_RETURN_NOT_OK(shards_[0]->window.RestoreState(checkpoint.window));
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (i - 1 >= checkpoint.extra_shards.size()) break;
    const EngineCheckpoint::ShardComponents& extra =
        checkpoint.extra_shards[i - 1];
    BIKEGRAPH_RETURN_NOT_OK(shards_[i]->reorder.RestoreState(extra.reorder));
    BIKEGRAPH_RETURN_NOT_OK(shards_[i]->window.RestoreState(extra.window));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->applied =
        i < checkpoint.shard_seqs.size() ? checkpoint.shard_seqs[i] : 0;
  }
  // The stream-wide watermark is held by whichever shard owned the last
  // raising event (every other shard is at or below it), so the max
  // recovers it exactly.
  global_reorder_wm_ = INT64_MIN;
  for (const auto& shard : shards_) {
    global_reorder_wm_ = std::max(
        global_reorder_wm_, shard->reorder.watermark().seconds_since_epoch());
  }
  tracker_.RestoreState(checkpoint.tracker);
  flushed_ = checkpoint.flushed != 0;
  delta_freeze_count_.store(checkpoint.delta_freeze_count,
                            std::memory_order_relaxed);
  full_freeze_count_.store(checkpoint.full_freeze_count,
                           std::memory_order_relaxed);
  desyncs_at_last_freeze_ = checkpoint.desyncs_published;
  if (checkpoint.snapshot_clean != 0 && checkpoint.publisher_epoch > 0) {
    // The published snapshot was current at checkpoint time. Rebuild it
    // from the restored window(s) (a full freeze is bit-identical to
    // whatever path originally produced it), restamp its original epoch
    // and window bounds, and republish — readers and the delta-freeze
    // baseline resume exactly where the crashed run left them.
    publisher_.RestoreEpoch(checkpoint.publisher_epoch - 1);
    BIKEGRAPH_ASSIGN_OR_RETURN(WindowSnapshot snap, FreezeFull());
    snap.window_start = CivilTime(checkpoint.published_window_start_seconds);
    snap.window_end = CivilTime(checkpoint.published_window_end_seconds);
    publisher_.Publish(std::move(snap));
    // Arm dirty tracking so replayed and resumed freezes can delta
    // against the republished baseline (RestoreState leaves it unarmed).
    if (config_.snapshot_delta.enabled) {
      for (const auto& shard : shards_) shard->window.DrainDirty();
    }
    dirty_ = false;
  } else {
    // Nothing published, or the window had moved past the publish: the
    // next freeze takes the full path against an empty baseline.
    publisher_.RestoreEpoch(checkpoint.publisher_epoch);
    dirty_ = true;
  }
  return Status::OK();
}

Status StreamEngine::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kEvent: {
      if (flushed_) {
        return Status::FailedPrecondition(
            "Ingest after Flush: the stream was already finalized");
      }
      const auto n = static_cast<int64_t>(config_.station_count);
      if (record.event.from_station < 0 || record.event.from_station >= n ||
          record.event.to_station < 0 || record.event.to_station >= n) {
        return Status::InvalidArgument("trip event endpoint out of range");
      }
      return IngestInternal(record.event);
    }
    case WalRecordType::kAdvance:
      return AdvanceInternal(CivilTime(record.watermark_seconds));
    case WalRecordType::kFlush:
      if (flushed_) return Status::OK();
      return FlushInternal();
    case WalRecordType::kSnapshot:
      return SnapshotInternal().status();
    case WalRecordType::kDetect:
      return DetectInternal(record.default_spec ? config_.detection
                                                : record.spec)
          .status();
  }
  return Status::DataLoss("unknown WAL record type");
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Recover(
    StreamEngineConfig config, RecoveryStats* stats) {
  if (stats != nullptr) *stats = RecoveryStats{};
  if (!config.durability.enabled || config.durability.directory.empty()) {
    return Status::InvalidArgument(
        "Recover() requires durability.enabled and a directory");
  }
  const std::string directory = config.durability.directory;
  IoEnv* const env = config.durability.io_env;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("create durability directory '" + directory +
                           "': " + ec.message());
  }
  if (HasDegradedMarker(directory)) {
    // A previous run dropped to non-durable mode and kept applying ops
    // the log never saw; replaying the logged prefix and calling it the
    // run would be exactly the silent divergence durability promises
    // never to produce. Deleting the marker file is the operator's
    // explicit acceptance of the loss (recovery then restores the
    // logged prefix).
    return Status::DataLoss(
        "durability directory '" + directory + "' carries '" +
        std::string(kDegradedMarkerName) +
        "': the previous run degraded to non-durable mode, so the log "
        "cannot reproduce its final state. Delete the marker to accept "
        "the loss and recover the logged prefix.");
  }
  BIKEGRAPH_ASSIGN_OR_RETURN(CheckpointLoadResult loaded,
                             LoadNewestCheckpoint(directory, env));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      WalReadResult wal, ReadWal(directory, /*repair_torn_tail=*/true, env));

  auto engine = std::unique_ptr<StreamEngine>(
      new StreamEngine(RecoverTag{}, std::move(config)));
  uint64_t base_seq = 0;
  if (loaded.found) {
    const EngineCheckpoint& c = loaded.checkpoint;
    if (c.station_count != engine->config_.station_count ||
        c.window_seconds != engine->config_.window_seconds ||
        c.max_lateness_seconds != engine->config_.max_lateness_seconds ||
        c.late_policy !=
            static_cast<uint8_t>(engine->config_.late_policy) ||
        c.suppress_duplicates !=
            (engine->config_.suppress_duplicate_rentals ? 1 : 0) ||
        c.shard_count != static_cast<uint64_t>(engine->shards_.size())) {
      return Status::FailedPrecondition(
          "checkpoint '" + loaded.path +
          "' was written under a different engine config (station count, "
          "window, lateness, policies, or shard count differ)");
    }
    BIKEGRAPH_RETURN_NOT_OK(engine->RestoreFromCheckpoint(c));
    base_seq = c.wal_seq;
  }
  // Records below the checkpoint are already folded into it; records
  // above it must start exactly at base_seq + 1 or the log has a hole
  // no replay can bridge.
  if (!wal.records.empty() && wal.first_seq > base_seq + 1) {
    return Status::DataLoss(
        "WAL records missing between checkpoint and first surviving "
        "segment");
  }
  uint64_t replayed = 0;
  uint64_t replay_errors = 0;
  uint64_t seq = wal.first_seq;
  for (const WalRecord& record : wal.records) {
    if (seq > base_seq) {
      if (!engine->ApplyWalRecord(record).ok()) ++replay_errors;
      ++replayed;
    }
    ++seq;
  }
  const uint64_t resume_seq = std::max(base_seq, wal.last_seq);
  engine->wal_seq_ = resume_seq;

  if (wal.last_seq >= base_seq && !wal.tail_segment_path.empty()) {
    // The tail segment's surviving records run through resume_seq, so
    // appending resume_seq + 1 at its (repaired) end keeps the in-file
    // sequence contiguous.
    BIKEGRAPH_ASSIGN_OR_RETURN(
        engine->wal_,
        WalWriter::Open(engine->config_.durability, resume_seq + 1,
                        wal.tail_segment_path, wal.tail_segment_bytes));
  } else {
    // Every surviving record (if any) is at or below the checkpoint —
    // appending to the tail would tear its sequence. The checkpoint
    // carries all their state, so drop the segments and start fresh.
    for (const auto& entry : fs::directory_iterator(directory, ec)) {
      if (IsWalSegmentName(entry.path().filename().string())) {
        fs::remove(entry.path(), ec);
      }
    }
    BIKEGRAPH_ASSIGN_OR_RETURN(
        engine->wal_,
        WalWriter::Open(engine->config_.durability, resume_seq + 1));
  }
  // Replay is complete and deterministic; only now may the shard workers
  // take over command application.
  engine->StartShardWorkers();
  if (stats != nullptr) {
    stats->used_checkpoint = loaded.found;
    stats->checkpoint_seq = base_seq;
    stats->skipped_checkpoints = loaded.skipped;
    stats->replayed_records = replayed;
    stats->replay_errors = replay_errors;
    stats->recovered_seq = resume_seq;
    stats->truncated_bytes = wal.truncated_bytes;
  }
  return engine;
}

}  // namespace bikegraph::stream
