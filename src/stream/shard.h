#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/civil_time.h"
#include "analysis/temporal_graph.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {

/// \brief Hash-partitions the station universe across N engine shards.
///
/// A pair's owner is the shard of its *canonical* endpoint — the smaller
/// station id — so `OwnerOfPair(u, v) == OwnerOfPair(v, u)` and every
/// trip between the same two stations lands on the same shard no matter
/// the direction. Ownership is exclusive: a pair's live trip count lives
/// on exactly one shard, which is what makes the freeze-time merge a
/// disjoint union instead of a reconciliation.
///
/// The hash is the splitmix64 finalizer — a fixed bit-mixing function,
/// NOT std::hash — because routing must be stable across processes and
/// platforms: WAL replay and checkpoint recovery reconstruct each
/// shard's event stream by re-routing the merged log, so a run recovered
/// on a different stdlib must route every event to the same shard the
/// crashed run did (locked by the sharded kill-point tests in
/// tests/stream_durability_test.cc).
class ShardRouter {
 public:
  /// `shard_count` of 0 is treated as 1 (the unsharded engine).
  explicit ShardRouter(size_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  size_t shard_count() const { return shard_count_; }

  /// The fixed 64-bit finalizer (splitmix64): stable across runs,
  /// platforms and standard libraries.
  static uint64_t Mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// The shard owning `station` (station ids are dense and
  /// non-negative; negative ids are rejected upstream by the engine's
  /// endpoint validation).
  size_t OwnerOf(int32_t station) const {
    return static_cast<size_t>(
        Mix(static_cast<uint64_t>(static_cast<uint32_t>(station))) %
        static_cast<uint64_t>(shard_count_));
  }

  /// The shard owning the unordered pair (u, v): the owner of the
  /// canonical (smaller) endpoint, so both orientations agree.
  size_t OwnerOfPair(int32_t u, int32_t v) const {
    return OwnerOf(u < v ? u : v);
  }

 private:
  size_t shard_count_;
};

/// \brief A read-only merged view over N shards' window graphs,
/// presenting the same query surface `FreezeSnapshot` /
/// `FreezeSnapshotDelta` read from a single `SlidingWindowGraph`.
///
/// Pair trip counts are disjoint across shards (exclusive pair
/// ownership), so `TripsBetween` and `ForEachPair` are disjoint unions;
/// the per-station day/hour/endpoint counters are each shard's integral
/// contribution, so `DayCounts`/`HourCounts`/`Profiles` are exact
/// element-wise sums — integer addition is associative, which is why the
/// merged freeze is bit-identical to the single-writer freeze no matter
/// how events were distributed (locked by tests/stream_shard_test.cc).
///
/// The view must only be constructed over *quiescent* shards whose
/// windows share a common watermark (the engine's two-phase barrier
/// guarantees both before every freeze — see stream/engine.h).
class ShardedWindowView {
 public:
  explicit ShardedWindowView(std::vector<const SlidingWindowGraph*> shards);

  size_t station_count() const;
  /// Trips currently inside the merged window (sum of shard counts;
  /// pairs are disjoint so nothing is counted twice).
  size_t trip_count() const;
  /// Distinct live station pairs across all shards (disjoint union).
  size_t pair_count() const;

  /// The merged stream time: the newest watermark across shards. After
  /// the engine's phase-2 barrier every shard sits at this value.
  CivilTime watermark() const;
  /// Exclusive lower bound of the merged half-open window, mirroring
  /// `SlidingWindowGraph::window_start()` exactly (CivilTime(INT64_MIN)
  /// for a landmark window or before any event).
  CivilTime window_start() const;

  /// Merged live trips between `u` and `v`: only the owning shard holds
  /// a nonzero count, so the sum is its value.
  int64_t TripsBetween(int32_t u, int32_t v) const;

  /// Element-wise sums of the shards' integral endpoint counters
  /// (by value — the merged row does not exist in any one shard).
  std::array<int64_t, 7> DayCounts(int32_t station) const;
  std::array<int64_t, 24> HourCounts(int32_t station) const;

  /// Merged per-station profiles in the batch pipeline's format: summed
  /// integer counters converted to double, exactly as a single window
  /// over the union stream would produce.
  analysis::StationProfiles Profiles() const;

  /// Visits every live pair ordered by (u, v) ascending, exactly like
  /// `SlidingWindowGraph::ForEachPair`: a k-way merge of the shards'
  /// sorted pair-key lists (disjoint, so ascending merge order is total
  /// order with no ties to break).
  template <typename Visitor>
  void ForEachPair(Visitor&& visit) const {
    struct Cursor {
      const std::vector<uint64_t>* keys;
      size_t pos;
      const SlidingWindowGraph* shard;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(shards_.size());
    for (const SlidingWindowGraph* shard : shards_) {
      const std::vector<uint64_t>& keys = shard->SortedPairKeys();
      if (!keys.empty()) cursors.push_back(Cursor{&keys, 0, shard});
    }
    while (!cursors.empty()) {
      size_t best = 0;
      for (size_t i = 1; i < cursors.size(); ++i) {
        if ((*cursors[i].keys)[cursors[i].pos] <
            (*cursors[best].keys)[cursors[best].pos]) {
          best = i;
        }
      }
      Cursor& cursor = cursors[best];
      const uint64_t key = (*cursor.keys)[cursor.pos];
      const auto u = static_cast<int32_t>(key >> 32);
      const auto v = static_cast<int32_t>(key & 0xFFFFFFFFu);
      visit(u, v, cursor.shard->TripsBetween(u, v));
      if (++cursor.pos == cursor.keys->size()) {
        cursors.erase(cursors.begin() +
                      static_cast<std::ptrdiff_t>(best));
      }
    }
  }

  const std::vector<const SlidingWindowGraph*>& shards() const {
    return shards_;
  }

 private:
  std::vector<const SlidingWindowGraph*> shards_;
};

/// \brief Merges per-shard dirty sets (each from that shard's
/// `DrainDirty()`) into the one `WindowDirtySet` the delta freeze
/// patches: pairs are a disjoint sorted union (exclusive ownership),
/// stations a sorted deduplicated union (one station's profile can be
/// touched from several shards), and the result is complete only when
/// every shard's record is (one overflowed or unarmed shard poisons the
/// merge, forcing the full-freeze path — never a silent partial patch).
/// `inputs` must be in shard order so the merge is deterministic.
WindowDirtySet MergeDirtySets(const std::vector<WindowDirtySet>& inputs);

}  // namespace bikegraph::stream
