#include "stream/chaos.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "core/rng.h"

namespace bikegraph::stream {

namespace {

/// Fraction of trips that stay inside their planted community block.
constexpr double kIntraCommunityFraction = 0.85;
/// Recent events eligible for duplicate-storm redelivery.
constexpr size_t kRecentWindow = 512;

}  // namespace

ChaosStream GenerateChaosStream(const ChaosConfig& config) {
  ChaosStream out;
  ChaosStats& stats = out.stats;
  if (config.station_count == 0 || config.duration_seconds <= 0) return out;
  Rng rng(config.seed);

  const auto n = static_cast<int64_t>(config.station_count);
  const size_t blocks = std::max<size_t>(1, config.planted_communities);

  // Station activation times: with additions enabled, every fourth
  // station opens somewhere in the first half of the stream; everything
  // else is live from the start.
  std::vector<int64_t> activates_at(config.station_count,
                                    config.start_seconds);
  if (config.station_additions) {
    for (size_t s = 3; s < config.station_count; s += 4) {
      activates_at[s] =
          config.start_seconds + rng.NextInt(1, config.duration_seconds / 2);
      ++stats.additions;
    }
  }
  // Outage intervals, one in flight at a time: [station, until_seconds).
  int64_t outage_station = -1;
  int64_t outage_until = 0;

  // Surge / skew / storm segments, each one in flight at a time.
  int64_t surge_until = 0;
  double surge_multiplier = 1.0;
  int64_t skew_until = 0;
  int64_t skew_offset = 0;
  int64_t storm_until = 0;

  const auto active = [&](int32_t station, int64_t now) {
    if (station == outage_station && now < outage_until) return false;
    return now >= activates_at[static_cast<size_t>(station)];
  };

  // Pick a station uniformly from a planted block.
  const auto pick_in_block = [&](size_t block) {
    const int64_t block_size = (n + static_cast<int64_t>(blocks) - 1) /
                               static_cast<int64_t>(blocks);
    const int64_t lo = static_cast<int64_t>(block) * block_size;
    const int64_t hi = std::min(n, lo + block_size) - 1;
    return static_cast<int32_t>(rng.NextInt(lo, hi));
  };

  std::deque<TripEvent> recent;
  // Start times of emitted events still above the admission horizon —
  // pruned at each advance to track max_events_in_horizon.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      in_horizon;
  int64_t rental_id = 1;
  int64_t watermark = config.start_seconds;
  bool advanced_once = false;

  const auto emit = [&](TripEvent event, bool duplicate) {
    ChaosAction action;
    action.kind = ChaosAction::Kind::kEvent;
    action.event = event;
    out.actions.push_back(action);
    ++stats.events;
    if (duplicate) {
      ++stats.duplicate_redeliveries;
    } else {
      ++stats.fresh_events;
      recent.push_back(event);
      if (recent.size() > kRecentWindow) recent.pop_front();
    }
    const int64_t start = event.start_time.seconds_since_epoch();
    const int64_t cutoff =
        advanced_once ? watermark - config.max_lateness_seconds
                      : INT64_MIN;
    if (start < cutoff) {
      ++stats.intended_late;
    } else if (!duplicate) {
      in_horizon.push(start);
      stats.max_events_in_horizon =
          std::max(stats.max_events_in_horizon,
                   static_cast<uint64_t>(in_horizon.size()));
    }
  };

  const auto fresh_event = [&](int64_t now) {
    const size_t block = rng.NextBounded(blocks);
    const int32_t from = pick_in_block(block);
    const int32_t to = rng.NextDouble() < kIntraCommunityFraction
                           ? pick_in_block(block)
                           : pick_in_block(rng.NextBounded(blocks));
    if (!active(from, now) || !active(to, now)) {
      ++stats.outage_suppressed;
      return;
    }
    TripEvent event;
    event.rental_id = rental_id++;
    event.from_station = from;
    event.to_station = to;
    // Small natural disorder: most trips start within the last two
    // minutes, a tail reaches a quarter of the lateness budget back.
    int64_t start = now - rng.NextInt(0, 120);
    if (rng.NextDouble() < 0.05) {
      start = now - rng.NextInt(0, std::max<int64_t>(
                                       1, config.max_lateness_seconds / 4));
    }
    if (now < skew_until) {
      start += skew_offset;
      ++stats.skewed_events;
    }
    event.start_time = CivilTime(start);
    event.end_time = CivilTime(start + rng.NextInt(120, 1800));
    if (now < surge_until) ++stats.surge_events;
    emit(event, /*duplicate=*/false);
  };

  for (int64_t sec = 0; sec < config.duration_seconds; ++sec) {
    const int64_t now = config.start_seconds + sec;

    // Scenario state machines: one coin per second each, tuned so a
    // two-day run triggers every scenario a handful of times.
    if (config.demand_surges && now >= surge_until &&
        rng.NextDouble() < 1.0 / 7200.0) {
      surge_until = now + rng.NextInt(300, 1200);
      surge_multiplier = static_cast<double>(rng.NextInt(3, 6));
      ++stats.surges;
    }
    if (config.station_outages && now >= outage_until &&
        rng.NextDouble() < 1.0 / 10800.0) {
      outage_station = rng.NextInt(0, n - 1);
      outage_until = now + rng.NextInt(1800, 7200);
      ++stats.outages;
    }
    if (config.clock_skew && now >= skew_until &&
        rng.NextDouble() < 1.0 / 7200.0) {
      skew_until = now + rng.NextInt(600, 1800);
      skew_offset = rng.NextInt(-900, 900);
      ++stats.skew_segments;
    }
    if (config.duplicate_storms && now >= storm_until &&
        rng.NextDouble() < 1.0 / 7200.0) {
      storm_until = now + rng.NextInt(60, 300);
      ++stats.duplicate_storms;
    }

    const double rate = config.events_per_second *
                        (now < surge_until ? surge_multiplier : 1.0);
    const int count = rng.NextPoisson(rate);
    for (int i = 0; i < count; ++i) fresh_event(now);

    if (config.duplicate_storms && now < storm_until && !recent.empty()) {
      const int dups = rng.NextPoisson(config.events_per_second);
      for (int i = 0; i < dups; ++i) {
        emit(recent[rng.NextBounded(recent.size())], /*duplicate=*/true);
      }
    }

    if (config.late_floods && advanced_once &&
        rng.NextDouble() < 1.0 / 10800.0) {
      // Aim a burst at the admission horizon: ±2 seconds around the
      // cutoff, so roughly half land just-late and half barely admit.
      ++stats.late_floods;
      const int64_t cutoff = watermark - config.max_lateness_seconds;
      const int64_t burst = rng.NextInt(50, 200);
      for (int64_t i = 0; i < burst; ++i) {
        TripEvent event;
        event.rental_id = rental_id++;
        const size_t block = rng.NextBounded(blocks);
        event.from_station = pick_in_block(block);
        event.to_station = pick_in_block(block);
        const int64_t start = cutoff + rng.NextInt(-2, 2);
        event.start_time = CivilTime(start);
        event.end_time = CivilTime(start + rng.NextInt(120, 1800));
        ++stats.boundary_flood_events;
        emit(event, /*duplicate=*/false);
      }
    }

    if (config.advance_interval_seconds > 0 && sec > 0 &&
        sec % config.advance_interval_seconds == 0) {
      watermark = now;
      advanced_once = true;
      ChaosAction action;
      action.kind = ChaosAction::Kind::kAdvance;
      action.watermark = CivilTime(watermark);
      out.actions.push_back(action);
      ++stats.advances;
      const int64_t cutoff = watermark - config.max_lateness_seconds;
      while (!in_horizon.empty() && in_horizon.top() <= cutoff) {
        in_horizon.pop();
      }
    }
  }
  return out;
}

FaultPlan MakeRandomFaultPlan(const FaultChaosConfig& config) {
  // Decorrelate from the stream generator so pairing the same seed for
  // both dimensions does not couple their draws.
  Rng rng(config.seed * 0x9E3779B97F4A7C15ull + 0xFA01ull);
  FaultPlan plan;
  const uint32_t burst = config.max_burst > 0 ? config.max_burst : 1;
  for (size_t i = 0; i < config.rules; ++i) {
    FaultPlan::Rule rule;
    // Stride 60 per rule index with burst <= min(burst, 59): windows on
    // the same op can never touch, so one failing call retries through
    // at most one rule's window (see the header's transient-only
    // guarantee).
    rule.after = i * 60 + rng.NextBounded(40);
    rule.count = 1 + rng.NextBounded(std::min<uint32_t>(burst, 59));
    if (config.transient_only) {
      switch (rng.NextBounded(4)) {
        case 0:
          rule.op = IoOp::kWrite;
          rule.kind = FaultPlan::Kind::kEintrStorm;
          break;
        case 1:
          rule.op = IoOp::kFsync;
          rule.kind = FaultPlan::Kind::kEintrStorm;
          break;
        case 2:
          rule.op = IoOp::kWrite;
          rule.kind = FaultPlan::Kind::kShortWrite;
          break;
        default:
          // The one budget-consuming transient: a bounded EAGAIN burst
          // on write. Only the first drawn (rule windows never overlap,
          // but keeping a single burst per plan also caps total budget
          // use per plan at `burst`, not per call).
          rule.op = IoOp::kWrite;
          if (std::any_of(plan.rules.begin(), plan.rules.end(),
                          [](const FaultPlan::Rule& r) {
                            return r.kind == FaultPlan::Kind::kError;
                          })) {
            rule.kind = FaultPlan::Kind::kEintrStorm;
          } else {
            rule.kind = FaultPlan::Kind::kError;
            rule.error = EAGAIN;
          }
          break;
      }
    } else {
      switch (rng.NextBounded(8)) {
        case 0:
          rule.op = IoOp::kWrite;
          rule.kind = FaultPlan::Kind::kError;
          rule.error = EIO;
          break;
        case 1:
          rule.op = IoOp::kWrite;
          rule.kind = FaultPlan::Kind::kError;
          rule.error = ENOSPC;
          break;
        case 2:
          rule.op = IoOp::kFsync;
          rule.kind = FaultPlan::Kind::kError;
          rule.error = EIO;
          break;
        case 3:
          rule.op = IoOp::kFsync;
          rule.kind = FaultPlan::Kind::kSyncLie;
          break;
        case 4:
          rule.op = IoOp::kFsyncDir;
          rule.kind = rng.NextBounded(2) == 0 ? FaultPlan::Kind::kSyncLie
                                              : FaultPlan::Kind::kError;
          break;
        case 5:
          rule.op = IoOp::kRename;
          rule.kind = FaultPlan::Kind::kError;
          rule.error = EACCES;
          break;
        case 6:
          rule.op = IoOp::kOpen;
          rule.kind = FaultPlan::Kind::kError;
          rule.error = rng.NextBounded(2) == 0 ? EIO : ENOSPC;
          break;
        default:
          rule.op = IoOp::kWrite;
          rule.kind = rng.NextBounded(2) == 0 ? FaultPlan::Kind::kShortWrite
                                              : FaultPlan::Kind::kEintrStorm;
          break;
      }
    }
    plan.rules.push_back(rule);
  }
  if (!config.transient_only && rng.NextBounded(4) == 0) {
    // Occasionally run on a small simulated disk so steady-state ENOSPC
    // (and the writer's prune self-heal) joins the schedule.
    plan.disk_capacity_bytes = 16384 + rng.NextBounded(1u << 17);
  }
  return plan;
}

}  // namespace bikegraph::stream
