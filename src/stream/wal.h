#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/io_env.h"
#include "core/result.h"
#include "community/detector.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief CRC32C (Castagnoli, the iSCSI/leveldb polynomial) of `size`
/// bytes, optionally chained via `seed` (pass a previous return value to
/// extend). Software slice-by-one table implementation — the WAL frames
/// are tens of bytes, so table lookup is already memory-bound; no
/// hardware intrinsics are assumed.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// \brief What the durable engine does when an I/O call fails. The
/// taxonomy (docs/DURABILITY.md, "Fault model"): EINTR is always retried
/// immediately and for free; EAGAIN/EWOULDBLOCK and ENOSPC are
/// *transient* — retried with capped exponential backoff after, for
/// ENOSPC, one automatic PruneWalSegments self-heal attempt; everything
/// else (and any failed data fsync — after fsyncgate a later success
/// proves nothing about pages the kernel already dropped) is *permanent*.
/// When the budget is exhausted or the error is permanent the engine
/// either poisons (default, the pre-policy behavior) or degrades to
/// loudly-non-durable mode and keeps ingesting.
struct FaultPolicy {
  /// Backed-off retries allowed per failing call. EINTR retries are
  /// unbounded and uncounted. 0 (default) keeps the legacy behavior:
  /// the first transient failure is final.
  uint32_t max_retries = 0;
  /// First backoff sleep; doubles per retry up to `backoff_max_ms`. The
  /// sleep goes through IoEnv::SleepMs, so tests inject a virtual clock
  /// and never block.
  int64_t backoff_initial_ms = 1;
  int64_t backoff_max_ms = 64;
  /// After the retry budget: false = poison the writer and engine
  /// (default); true = degrade — the engine abandons the WAL, writes a
  /// loud on-disk marker (kDegradedMarkerName) so Recover() refuses the
  /// directory with DataLoss, and keeps serving non-durably.
  bool degrade_on_exhausted = false;
};

/// \brief Durability knobs for a StreamEngine: write-ahead logging of
/// every state-changing call plus periodic checkpoints, both under
/// `directory`. Off by default — a disabled engine takes one untaken
/// branch per call and allocates nothing.
///
/// File layout under `directory` (see docs/DURABILITY.md):
///   wal-<seq20>.log    append-only segments; <seq20> is the sequence
///                      number of the segment's first record
///   ckpt-<seq20>.ckpt  checkpoints; <seq20> is the last WAL sequence
///                      number the checkpointed state covers
struct DurabilityConfig {
  /// Master switch. When false every other field is ignored.
  bool enabled = false;
  /// Directory for WAL segments and checkpoints (created if missing).
  /// A fresh engine refuses a directory that already holds durable
  /// state — use StreamEngine::Recover() for those.
  std::string directory;
  /// Rotate to a new segment once the current one reaches this size.
  uint64_t segment_bytes = uint64_t{64} << 20;
  /// Group fsync: the log is fsynced after every N appended records
  /// (and always by Checkpoint()/SyncWal()). 0 disables interval syncs
  /// entirely — only explicit sync points make records crash-durable.
  /// Smaller N shrinks the window of arrivals a crash can lose; larger
  /// N amortizes the fsync latency over more events (measured in
  /// docs/DURABILITY.md).
  uint64_t sync_interval_records = 512;
  /// Checkpoints retained after each successful Checkpoint(); older
  /// ones — and the WAL segments only they needed — are pruned. At
  /// least 2 keeps a fallback when the newest file is torn by a crash.
  size_t checkpoints_kept = 2;
  /// Failure handling for the durable I/O (see FaultPolicy).
  FaultPolicy faults;
  /// Syscall seam for all durable I/O. Non-owning; must outlive the
  /// engine (and, for FaultInjectingIoEnv::SimulateCrash, outlive it by
  /// design). nullptr = IoEnv::Default(), the production passthrough.
  IoEnv* io_env = nullptr;
};

/// \brief What one WAL record reproduces. Every state-changing
/// StreamEngine entry point appends exactly one record *before* applying
/// it, so replaying the log in order reproduces the engine bit for bit —
/// including derived state: snapshots and detection mutate the publisher
/// epoch and the tracker seed, so they are logged too (as the intent, a
/// few bytes; replay re-executes them deterministically).
enum class WalRecordType : uint8_t {
  kEvent = 1,     ///< Ingest(event) — logged pre-dedup/pre-late-check so
                  ///< replay reproduces the drop/suppress counters too.
  kAdvance = 2,   ///< Advance(watermark)
  kFlush = 3,     ///< Flush()
  kSnapshot = 4,  ///< Snapshot() that was not a published-epoch no-op.
                  ///< Sharded engines (shard_count > 1) log every
                  ///< Snapshot(): even a would-be reuse runs the freeze
                  ///< barrier, which moves checkpointed shard clocks.
  kDetect = 5,    ///< DetectCurrent(); `default_spec` distinguishes the
                  ///< engine-default spec from an explicit one
};

/// \brief One log record. Only the fields of the active `type` are
/// meaningful (and serialized).
struct WalRecord {
  WalRecordType type = WalRecordType::kEvent;
  TripEvent event{};                      // kEvent
  int64_t watermark_seconds = 0;          // kAdvance
  bool default_spec = true;               // kDetect
  community::DetectSpec spec{};           // kDetect, default_spec == false
                                          // (initial_partition not carried
                                          // — DetectCurrent ignores it)
};

/// \brief Append side of the log: length-prefixed, CRC32C-framed records
/// buffered in user space, written through on a 64 KiB high-water mark,
/// and fsynced in groups of `sync_interval_records`. Rotates to a new
/// segment at `segment_bytes`. Not thread-safe (the engine serializes).
class WalWriter {
 public:
  /// Opens a writer that will append record `next_seq` first. With an
  /// empty `tail_segment_path` a new segment named for `next_seq` is
  /// created (the fresh-log and post-recovery-rotation cases); otherwise
  /// appends to the given segment, which must currently be exactly
  /// `tail_segment_bytes` long (ReadWal's repaired valid length).
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Open(
      const DurabilityConfig& config, uint64_t next_seq,
      const std::string& tail_segment_path = {},
      uint64_t tail_segment_bytes = 0);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one record (sequence number `next_seq()`), writing through
  /// and group-fsyncing per the config. An I/O error poisons the writer:
  /// every later call returns the same error (the log tail is suspect).
  [[nodiscard]] Status Append(const WalRecord& record);

  /// Writes the buffer through and fsyncs — after this every appended
  /// record survives a crash. No-op when nothing is pending.
  [[nodiscard]] Status Sync();

  /// Sequence number the next Append will get (1-based).
  uint64_t next_seq() const { return next_seq_; }
  /// fsync calls issued (group syncs + explicit Sync).
  uint64_t sync_count() const { return sync_count_; }
  /// Segments created by this writer (rotation observability).
  uint64_t segments_opened() const { return segments_opened_; }
  /// Backed-off retries performed (FaultPolicy::max_retries budget;
  /// free EINTR retries are not counted).
  uint64_t retry_count() const { return retry_count_; }
  /// Calls that failed transiently and then succeeded (each such call
  /// counts once, however many retries it took).
  uint64_t transient_recovered_count() const {
    return transient_recovered_count_;
  }
  /// ENOSPC self-heal attempts: PruneWalSegments runs this writer
  /// triggered before retrying a full-disk failure.
  uint64_t enospc_prune_count() const { return enospc_prune_count_; }

 private:
  explicit WalWriter(const DurabilityConfig& config) : config_(config) {}
  Status OpenSegment(uint64_t first_seq);
  Status WriteBuffer();
  /// One-per-call retry budget: decides whether a transient failure gets
  /// another attempt, sleeping the capped-exponential backoff through
  /// the environment clock when it does.
  bool GrantDelayedRetry(uint32_t* delayed_left, int64_t* backoff_ms);
  /// First-ENOSPC self-heal: prune WAL segments already covered by the
  /// oldest on-disk checkpoint, hoping to free enough space to retry.
  void TryEnospcSelfHeal();

  DurabilityConfig config_;
  IoEnv* env_ = nullptr;
  int fd_ = -1;
  std::string buffer_;
  Status poisoned_ = Status::OK();
  uint64_t next_seq_ = 1;
  uint64_t segment_bytes_ = 0;  ///< current segment size incl. buffer
  bool segment_empty_ = true;   ///< no record yet; must not rotate
  uint64_t records_since_sync_ = 0;
  uint64_t sync_count_ = 0;
  uint64_t segments_opened_ = 0;
  uint64_t retry_count_ = 0;
  uint64_t transient_recovered_count_ = 0;
  uint64_t enospc_prune_count_ = 0;
};

/// \brief Everything ReadWal recovered from a log directory.
struct WalReadResult {
  /// All valid records in sequence order; record i has sequence number
  /// `first_seq + i`. Empty for an empty (or fully pruned) log.
  std::vector<WalRecord> records;
  uint64_t first_seq = 0;  ///< 0 when `records` is empty
  uint64_t last_seq = 0;   ///< 0 when `records` is empty
  /// Bytes dropped from a torn tail (a crash mid-append or mid-sync
  /// leaves a partial or CRC-failing final frame; everything before it
  /// is kept, everything from it on is discarded).
  uint64_t truncated_bytes = 0;
  uint64_t segment_count = 0;
  /// The last surviving segment (append target for resumption); empty
  /// when the directory holds no segments.
  std::string tail_segment_path;
  /// Valid byte length of that segment (its physical length after a
  /// repair).
  uint64_t tail_segment_bytes = 0;
};

/// \brief Reads every record under `directory` in sequence order. A torn
/// *tail* (partial frame, bad CRC, or a header-less final segment from a
/// crash mid-rotation) is truncated away and counted — with
/// `repair_torn_tail` the file is physically truncated too, making the
/// directory clean for a resumed writer. Corruption anywhere *before*
/// the tail, or a sequence gap between segments, is unrecoverable and
/// returns DataLoss naming the segment.
[[nodiscard]] Result<WalReadResult> ReadWal(const std::string& directory,
                                            bool repair_torn_tail,
                                            IoEnv* env = nullptr);

/// \brief Deletes WAL segments every record of which has sequence number
/// <= `through_seq` (their state is covered by a checkpoint). The last
/// segment is always kept — it is the append target. `pruned` (optional)
/// receives the number of files removed. Removal goes through `env`
/// (nullptr = IoEnv::Default()) so a simulated full disk gets its bytes
/// credited back.
[[nodiscard]] Status PruneWalSegments(const std::string& directory,
                                      uint64_t through_seq,
                                      uint64_t* pruned = nullptr,
                                      IoEnv* env = nullptr);

/// \brief The smallest `wal_seq` among the `ckpt-*.ckpt` files under
/// `directory`, or 0 when there are none. This is the safe
/// PruneWalSegments bound the ENOSPC self-heal uses without consulting
/// the engine: segments at or below the oldest retained checkpoint are
/// re-derivable from it (0 prunes nothing).
[[nodiscard]] uint64_t OldestCheckpointSeq(const std::string& directory);

/// \brief True when `directory` holds WAL segments or checkpoints — the
/// fresh-engine constructor refuses such a directory so a misconfigured
/// restart cannot silently shadow recoverable state. A degraded marker
/// (kDegradedMarkerName) counts as durable state too.
[[nodiscard]] bool DirectoryHasDurableState(const std::string& directory);

/// \brief Marker file a degrading engine leaves behind
/// (FaultPolicy::degrade_on_exhausted): its presence means ops were
/// applied after logging stopped, so the directory can no longer
/// reproduce the run — Recover() refuses it with a loud DataLoss.
/// Deleting the marker is the operator's explicit "accept the loss,
/// recover the logged prefix".
inline constexpr char kDegradedMarkerName[] = "wal.degraded";

/// \brief Best-effort durable write of the degraded marker (content:
/// `reason`). All errors ignored — this runs while the disk is already
/// failing; losing the marker can only make recovery *succeed* on the
/// logged prefix, never silently diverge from it.
void WriteDegradedMarker(const DurabilityConfig& config,
                         const Status& reason);

/// \brief True when `directory` holds the degraded marker.
[[nodiscard]] bool HasDegradedMarker(const std::string& directory);

/// Little-endian wire helpers shared by the WAL and checkpoint codecs.
/// Writers append to a std::string; the reader is a bounds-checked cursor
/// that goes (and stays) !ok() on any underflow, so decode loops can
/// check once at the end instead of per field.
namespace wire {

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 4);
}
inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 8);
}
inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}
inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

struct Cursor {
  const unsigned char* p = nullptr;
  size_t remaining = 0;
  bool ok = true;

  Cursor(const void* data, size_t size)
      : p(static_cast<const unsigned char*>(data)), remaining(size) {}

  bool Take(size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Take(1)) return 0;
    uint8_t v = p[0];
    p += 1;
    remaining -= 1;
    return v;
  }
  uint32_t U32() {
    if (!Take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    remaining -= 4;
    return v;
  }
  uint64_t U64() {
    if (!Take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    remaining -= 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double Double() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

}  // namespace wire

}  // namespace bikegraph::stream
