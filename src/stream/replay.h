#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/result.h"
#include "data/dataset.h"
#include "expansion/final_network.h"
#include "stream/engine.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief How fast — and how tidily — a replay runs.
struct ReplayOptions {
  /// Event-time seconds replayed per wall-clock second; 0 (the default)
  /// replays as fast as possible (no sleeping — the mode tests and
  /// benches use). E.g. 86400 compresses a day of trips into a second.
  double speed = 0.0;
  /// Seeded arrival jitter, for exercising the reorder buffer: each
  /// event's *arrival* is delayed by a uniform 0..shuffle_seconds report
  /// lag (its start/end times are untouched) and the stream is re-sorted
  /// by report time, so events arrive up to `shuffle_seconds` out of
  /// start-time order — the shape of a live feed that reports trips when
  /// they end. An engine whose `max_lateness_seconds >=
  /// shuffle_seconds` absorbs the jitter completely. 0 (the default)
  /// replays in sorted start-time order.
  int64_t shuffle_seconds = 0;
  /// Seed for the jitter; the perturbed order is fully determined by
  /// (shuffle_seconds, shuffle_seed), so jittered runs are reproducible.
  uint64_t shuffle_seed = 0x5EEDF00D;
};

/// \brief A TripEvent stream in arrival order plus each event's report
/// (arrival) time — what JitterArrivalOrder produces.
struct JitteredStream {
  /// Events ordered by report time (ties keep start-time order).
  std::vector<TripEvent> events;
  /// Non-decreasing report time per event, seconds since epoch
  /// (`events[i]` "arrives" at `report_seconds[i]`).
  std::vector<int64_t> report_seconds;
};

/// \brief Re-sorts `events` (already in start-time order) by a perturbed
/// report time: start + uniform 0..shuffle_seconds lag, drawn from
/// `seed`. Fully deterministic; an event can precede another that
/// started up to `shuffle_seconds` earlier, and never more — the jitter
/// is exactly absorbed by a reorder horizon of `shuffle_seconds`. The
/// one shared jitter model: ReplaySource, the reorder bench and the
/// equivalence tests all use it. `shuffle_seconds <= 0` passes the
/// stream through (report time = start time).
JitteredStream JitterArrivalOrder(std::vector<TripEvent> events,
                                  int64_t shuffle_seconds, uint64_t seed);

/// \brief Turns a dataset (real or synthetic) into an ordered TripEvent
/// stream — the bridge between the batch world and the streaming engine.
///
/// Construction resolves every rental's endpoints to station ids via a
/// `StationMapper` (or a FinalNetwork's location→station map), drops
/// unmappable rentals (counted), and sorts by event time. Consumption is
/// pull-based (`Next`) or push-based (`ReplayInto`), with optional
/// wall-clock pacing for live demos.
class ReplaySource {
 public:
  /// Stream over `dataset`'s rentals with endpoints mapped by
  /// `map_location`.
  static ReplaySource FromDataset(const data::Dataset& dataset,
                                  const StationMapper& map_location,
                                  const ReplayOptions& options = {});

  /// Stream over the cleaned dataset of a batch run, mapped onto the
  /// expanded network's stations — replaying this through a landmark
  /// window reproduces the batch trip multigraph exactly.
  static ReplaySource FromFinalNetwork(const data::Dataset& cleaned,
                                       const expansion::FinalNetwork& network,
                                       const ReplayOptions& options = {});

  /// The full ordered event stream.
  const std::vector<TripEvent>& events() const { return events_; }
  /// Rentals dropped because an endpoint had no station mapping.
  size_t dropped_count() const { return dropped_; }

  bool Done() const { return cursor_ >= events_.size(); }
  size_t remaining() const { return events_.size() - cursor_; }

  /// Next event without consuming it; nullptr when exhausted.
  const TripEvent* Peek() const {
    return Done() ? nullptr : &events_[cursor_];
  }

  /// Consumes and returns the next event. With a positive replay speed,
  /// sleeps so consecutive events are spaced (arrival-time delta)/speed
  /// apart in wall time — arrival time is the jittered report time when
  /// `shuffle_seconds > 0` (report times are non-decreasing, so a
  /// jittered replay paces at the same overall speed as an ordered one)
  /// and the event start time otherwise.
  std::optional<TripEvent> Next();

  /// Rewinds to the start of the stream.
  void Rewind() { cursor_ = 0; }

  /// Drains the whole stream into `engine` (Ingest per event), honouring
  /// the replay speed, then flushes the engine's reorder buffer so every
  /// jittered straggler lands in the window (a no-op for ordered
  /// replays). Returns the first ingestion error, if any.
  Status ReplayInto(StreamEngine* engine);

 private:
  ReplaySource(JitteredStream stream, size_t dropped, ReplayOptions options)
      : events_(std::move(stream.events)),
        report_seconds_(std::move(stream.report_seconds)),
        dropped_(dropped),
        options_(options) {}

  std::vector<TripEvent> events_;
  /// Arrival time per event (empty when the stream is unjittered and
  /// arrival time == start time).
  std::vector<int64_t> report_seconds_;
  size_t dropped_ = 0;
  ReplayOptions options_;
  size_t cursor_ = 0;
};

}  // namespace bikegraph::stream
