#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/result.h"
#include "data/dataset.h"
#include "expansion/final_network.h"
#include "stream/engine.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief How fast a replay runs.
struct ReplayOptions {
  /// Event-time seconds replayed per wall-clock second; 0 (the default)
  /// replays as fast as possible (no sleeping — the mode tests and
  /// benches use). E.g. 86400 compresses a day of trips into a second.
  double speed = 0.0;
};

/// \brief Turns a dataset (real or synthetic) into an ordered TripEvent
/// stream — the bridge between the batch world and the streaming engine.
///
/// Construction resolves every rental's endpoints to station ids via a
/// `StationMapper` (or a FinalNetwork's location→station map), drops
/// unmappable rentals (counted), and sorts by event time. Consumption is
/// pull-based (`Next`) or push-based (`ReplayInto`), with optional
/// wall-clock pacing for live demos.
class ReplaySource {
 public:
  /// Stream over `dataset`'s rentals with endpoints mapped by
  /// `map_location`.
  static ReplaySource FromDataset(const data::Dataset& dataset,
                                  const StationMapper& map_location,
                                  const ReplayOptions& options = {});

  /// Stream over the cleaned dataset of a batch run, mapped onto the
  /// expanded network's stations — replaying this through a landmark
  /// window reproduces the batch trip multigraph exactly.
  static ReplaySource FromFinalNetwork(const data::Dataset& cleaned,
                                       const expansion::FinalNetwork& network,
                                       const ReplayOptions& options = {});

  /// The full ordered event stream.
  const std::vector<TripEvent>& events() const { return events_; }
  /// Rentals dropped because an endpoint had no station mapping.
  size_t dropped_count() const { return dropped_; }

  bool Done() const { return cursor_ >= events_.size(); }
  size_t remaining() const { return events_.size() - cursor_; }

  /// Next event without consuming it; nullptr when exhausted.
  const TripEvent* Peek() const {
    return Done() ? nullptr : &events_[cursor_];
  }

  /// Consumes and returns the next event. With a positive replay speed,
  /// sleeps so consecutive events are spaced (event-time delta)/speed
  /// apart in wall time.
  std::optional<TripEvent> Next();

  /// Rewinds to the start of the stream.
  void Rewind() { cursor_ = 0; }

  /// Drains the whole stream into `engine` (Ingest per event), honouring
  /// the replay speed, and advances the engine's watermark to the last
  /// event time. Returns the first ingestion error, if any.
  Status ReplayInto(StreamEngine* engine);

 private:
  ReplaySource(std::vector<TripEvent> events, size_t dropped,
               ReplayOptions options)
      : events_(std::move(events)), dropped_(dropped), options_(options) {}

  std::vector<TripEvent> events_;
  size_t dropped_ = 0;
  ReplayOptions options_;
  size_t cursor_ = 0;
};

}  // namespace bikegraph::stream
