#include "stream/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

namespace bikegraph::stream {

namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointMagic[8] = {'B', 'G', 'C', 'K', 'P', 'T', '1', '\n'};
/// File layout: magic(8) + u64 payload size + u32 CRC32C(payload) +
/// payload.
constexpr size_t kFileHeaderBytes = 20;

std::string CheckpointName(uint64_t wal_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".ckpt", wal_seq);
  return buf;
}

bool ParseCheckpointName(const std::string& name, uint64_t* wal_seq) {
  if (name.size() != 30 || name.rfind("ckpt-", 0) != 0 ||
      name.compare(25, 5, ".ckpt") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 5; i < 25; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  *wal_seq = seq;
  return true;
}

Status IOError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

IoEnv* ResolveEnv(IoEnv* env) {
  return env != nullptr ? env : IoEnv::Default();
}

Status FsyncDirectory(IoEnv* env, const std::string& directory) {
  if (env->FsyncDir(directory.c_str()) != 0) {
    return IOError("fsync directory", directory);
  }
  return Status::OK();
}

void PutEvent(std::string* out, const TripEvent& event) {
  wire::PutI64(out, event.rental_id);
  wire::PutI32(out, event.from_station);
  wire::PutI32(out, event.to_station);
  wire::PutI64(out, event.start_time.seconds_since_epoch());
  wire::PutI64(out, event.end_time.seconds_since_epoch());
}

TripEvent GetEvent(wire::Cursor* in) {
  TripEvent event;
  event.rental_id = in->I64();
  event.from_station = in->I32();
  event.to_station = in->I32();
  event.start_time = CivilTime(in->I64());
  event.end_time = CivilTime(in->I64());
  return event;
}

// The reorder/window codecs are shared between shard 0 (the legacy
// field positions in the payload) and the appended extra-shard blocks,
// so the two can never drift apart.

void PutReorderState(std::string* out, const ReorderBufferState& r) {
  wire::PutI64(out, r.watermark_seconds);
  wire::PutU8(out, r.flushed ? 1 : 0);
  wire::PutU64(out, r.reordered_count);
  wire::PutU64(out, r.late_dropped_count);
  wire::PutU64(out, r.duplicate_count);
  wire::PutU64(out, r.released_count);
  wire::PutU64(out, r.duplicate_ids_high_water);
  wire::PutU64(out, r.duplicate_ids_evicted);
  wire::PutU64(out, r.buffered.size());
  for (const TripEvent& event : r.buffered) PutEvent(out, event);
  wire::PutU64(out, r.seen.size());
  for (const auto& [start, id] : r.seen) {
    wire::PutI64(out, start);
    wire::PutI64(out, id);
  }
}

/// False on a corrupt payload (a count field claiming more entries than
/// bytes remain — the anti-terabyte fuse).
bool GetReorderState(wire::Cursor* in, ReorderBufferState* r) {
  const auto bounded = [in](uint64_t count) {
    return in->ok && count <= in->remaining;
  };
  r->watermark_seconds = in->I64();
  r->flushed = in->U8() != 0;
  r->reordered_count = in->U64();
  r->late_dropped_count = in->U64();
  r->duplicate_count = in->U64();
  r->released_count = in->U64();
  r->duplicate_ids_high_water = in->U64();
  r->duplicate_ids_evicted = in->U64();
  uint64_t count = in->U64();
  if (!bounded(count)) return false;
  r->buffered.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    r->buffered.push_back(GetEvent(in));
  }
  count = in->U64();
  if (!bounded(count)) return false;
  r->seen.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t start = in->I64();
    const int64_t id = in->I64();
    r->seen.emplace_back(start, id);
  }
  return in->ok;
}

void PutWindowState(std::string* out, const WindowGraphState& w) {
  wire::PutI64(out, w.watermark_seconds);
  wire::PutI64(out, w.last_event_seconds);
  wire::PutU64(out, w.ingested_count);
  wire::PutU64(out, w.delta_desync_count);
  wire::PutU64(out, w.live_count);
  wire::PutU64(out, w.ring.size());
  for (const auto& e : w.ring) {
    wire::PutI64(out, e.start_seconds);
    wire::PutI32(out, e.from);
    wire::PutI32(out, e.to);
  }
  wire::PutU64(out, w.pairs.size());
  for (const auto& [key, trips] : w.pairs) {
    wire::PutU64(out, key);
    wire::PutI64(out, trips);
  }
  wire::PutU64(out, w.day.size());
  for (const auto& day : w.day) {
    for (int64_t v : day) wire::PutI64(out, v);
  }
  wire::PutU64(out, w.hour.size());
  for (const auto& hour : w.hour) {
    for (int64_t v : hour) wire::PutI64(out, v);
  }
  wire::PutU64(out, w.endpoint_count.size());
  for (int64_t v : w.endpoint_count) wire::PutI64(out, v);
}

bool GetWindowState(wire::Cursor* in, WindowGraphState* w) {
  const auto bounded = [in](uint64_t count) {
    return in->ok && count <= in->remaining;
  };
  w->watermark_seconds = in->I64();
  w->last_event_seconds = in->I64();
  w->ingested_count = in->U64();
  w->delta_desync_count = in->U64();
  w->live_count = in->U64();
  uint64_t count = in->U64();
  if (!bounded(count)) return false;
  w->ring.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    WindowGraphState::RingEvent e;
    e.start_seconds = in->I64();
    e.from = in->I32();
    e.to = in->I32();
    w->ring.push_back(e);
  }
  count = in->U64();
  if (!bounded(count)) return false;
  w->pairs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = in->U64();
    const int64_t trips = in->I64();
    w->pairs.emplace_back(key, trips);
  }
  count = in->U64();
  if (!bounded(count)) return false;
  w->day.resize(count);
  for (auto& day : w->day) {
    for (int64_t& v : day) v = in->I64();
  }
  count = in->U64();
  if (!bounded(count)) return false;
  w->hour.resize(count);
  for (auto& hour : w->hour) {
    for (int64_t& v : hour) v = in->I64();
  }
  count = in->U64();
  if (!bounded(count)) return false;
  w->endpoint_count.resize(count);
  for (int64_t& v : w->endpoint_count) v = in->I64();
  return in->ok;
}

}  // namespace

std::string SerializeCheckpoint(const EngineCheckpoint& c) {
  std::string out;
  wire::PutU64(&out, c.wal_seq);
  wire::PutU64(&out, c.station_count);
  wire::PutI64(&out, c.window_seconds);
  wire::PutI64(&out, c.max_lateness_seconds);
  wire::PutU8(&out, c.late_policy);
  wire::PutU8(&out, c.suppress_duplicates);
  wire::PutU8(&out, c.flushed);
  wire::PutU8(&out, c.snapshot_clean);
  wire::PutU64(&out, c.publisher_epoch);
  wire::PutI64(&out, c.published_window_start_seconds);
  wire::PutI64(&out, c.published_window_end_seconds);
  wire::PutU64(&out, c.delta_freeze_count);
  wire::PutU64(&out, c.full_freeze_count);
  wire::PutU64(&out, c.desyncs_published);

  // Shard 0's reorder buffer and window graph (legacy field positions).
  PutReorderState(&out, c.reorder);
  PutWindowState(&out, c.window);

  // Tracker.
  wire::PutU64(&out, c.tracker.refresh_count);
  wire::PutU64(&out, c.tracker.escalation_count);
  wire::PutDouble(&out, c.tracker.previous_modularity);
  wire::PutU8(&out, c.tracker.previous_partition.has_value() ? 1 : 0);
  if (c.tracker.previous_partition.has_value()) {
    const auto& assignment = c.tracker.previous_partition->assignment;
    wire::PutU64(&out, assignment.size());
    for (int32_t label : assignment) wire::PutI32(&out, label);
  }

  // Sharding extension: appended after every legacy block, so the
  // single-shard payload is a strict prefix extension (shard_count=1,
  // one seq, no extra component blocks).
  wire::PutU64(&out, c.shard_count);
  for (uint64_t i = 0; i < c.shard_count; ++i) {
    wire::PutU64(&out, i < c.shard_seqs.size() ? c.shard_seqs[i] : 0);
  }
  for (uint64_t i = 1; i < c.shard_count; ++i) {
    static const EngineCheckpoint::ShardComponents kEmpty;
    const auto& shard =
        i - 1 < c.extra_shards.size() ? c.extra_shards[i - 1] : kEmpty;
    PutReorderState(&out, shard.reorder);
    PutWindowState(&out, shard.window);
  }
  return out;
}

Result<EngineCheckpoint> ParseCheckpoint(const std::string& bytes) {
  // A fuse against a corrupt count field asking for terabytes: no vector
  // may claim more entries than bytes remaining.
  wire::Cursor in(bytes.data(), bytes.size());
  const auto bounded = [&in](uint64_t count) {
    return in.ok && count <= in.remaining;
  };
  EngineCheckpoint c;
  c.wal_seq = in.U64();
  c.station_count = in.U64();
  c.window_seconds = in.I64();
  c.max_lateness_seconds = in.I64();
  c.late_policy = in.U8();
  c.suppress_duplicates = in.U8();
  c.flushed = in.U8();
  c.snapshot_clean = in.U8();
  c.publisher_epoch = in.U64();
  c.published_window_start_seconds = in.I64();
  c.published_window_end_seconds = in.I64();
  c.delta_freeze_count = in.U64();
  c.full_freeze_count = in.U64();
  c.desyncs_published = in.U64();

  if (!GetReorderState(&in, &c.reorder) || !GetWindowState(&in, &c.window)) {
    return Status::DataLoss("corrupt checkpoint payload");
  }

  c.tracker.refresh_count = in.U64();
  c.tracker.escalation_count = in.U64();
  c.tracker.previous_modularity = in.Double();
  if (in.U8() != 0) {
    uint64_t count = in.U64();
    if (!bounded(count)) return Status::DataLoss("corrupt checkpoint payload");
    community::Partition partition;
    partition.assignment.resize(count);
    for (int32_t& label : partition.assignment) label = in.I32();
    c.tracker.previous_partition = std::move(partition);
  }

  // Sharding extension.
  c.shard_count = in.U64();
  if (c.shard_count == 0 || !bounded(c.shard_count)) {
    return Status::DataLoss("corrupt checkpoint payload");
  }
  c.shard_seqs.resize(c.shard_count);
  for (uint64_t& seq : c.shard_seqs) seq = in.U64();
  c.extra_shards.resize(c.shard_count - 1);
  for (auto& shard : c.extra_shards) {
    if (!GetReorderState(&in, &shard.reorder) ||
        !GetWindowState(&in, &shard.window)) {
      return Status::DataLoss("corrupt checkpoint payload");
    }
  }
  if (!in.ok || in.remaining != 0) {
    return Status::DataLoss("corrupt checkpoint payload");
  }
  return c;
}

Status WriteCheckpoint(const std::string& directory,
                       const EngineCheckpoint& checkpoint, IoEnv* env) {
  env = ResolveEnv(env);
  const std::string payload = SerializeCheckpoint(checkpoint);
  std::string file(kCheckpointMagic, sizeof(kCheckpointMagic));
  wire::PutU64(&file, payload.size());
  wire::PutU32(&file, Crc32c(payload.data(), payload.size()));
  file.append(payload);

  const std::string final_path =
      (fs::path(directory) / CheckpointName(checkpoint.wal_seq)).string();
  const std::string tmp_path = final_path + ".tmp";
  // A failed commit must leave the directory as it found it: every error
  // path below removes the temp (best-effort) so the previous checkpoint
  // set — still intact, never touched until the atomic rename — remains
  // the newest loadable state and the engine can simply retry later.
  int fd = -1;
  for (;;) {
    fd = env->Open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) return IOError("create checkpoint", tmp_path);
  const char* p = file.data();
  size_t left = file.size();
  while (left > 0) {
    const int64_t n = env->Write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const Status failed = IOError("write checkpoint", tmp_path);
      env->Close(fd);
      (void)env->Unlink(tmp_path.c_str());
      return failed;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (env->Fsync(fd) != 0) {
    const Status failed = IOError("fsync checkpoint", tmp_path);
    env->Close(fd);
    (void)env->Unlink(tmp_path.c_str());
    return failed;
  }
  env->Close(fd);
  if (env->Rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status failed = IOError("rename checkpoint into place", final_path);
    (void)env->Unlink(tmp_path.c_str());
    return failed;
  }
  // Past the rename the new name may or may not survive a crash until
  // the directory is fsynced; if this fails, LoadNewestCheckpoint falls
  // back to the previous checkpoint (or sweeps a reverted .tmp).
  return FsyncDirectory(env, directory);
}

Result<CheckpointLoadResult> LoadNewestCheckpoint(
    const std::string& directory, IoEnv* env) {
  env = ResolveEnv(env);
  CheckpointLoadResult result;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return result;
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) {
      candidates.emplace_back(seq, entry.path().string());
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0 &&
               name.rfind("ckpt-", 0) == 0) {
      // A crash mid-checkpoint: the half-written temp never became a
      // .ckpt, so it carries no state anyone committed to. Clean it up
      // (best-effort — a stray temp is harmless, just litter).
      (void)env->Unlink(entry.path().string().c_str());
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [seq, path] : candidates) {
    std::string bytes;
    {
      int fd = -1;
      for (;;) {
        fd = env->Open(path.c_str(), O_RDONLY, 0);
        if (fd >= 0 || errno != EINTR) break;
      }
      if (fd < 0) return IOError("open checkpoint", path);
      char buf[1u << 16];
      bool read_error = false;
      for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
          if (errno == EINTR) continue;
          read_error = true;
          break;
        }
        if (n == 0) break;
        bytes.append(buf, static_cast<size_t>(n));
      }
      env->Close(fd);
      if (read_error) return IOError("read checkpoint", path);
    }
    bool valid = bytes.size() >= kFileHeaderBytes &&
                 std::memcmp(bytes.data(), kCheckpointMagic,
                             sizeof(kCheckpointMagic)) == 0;
    if (valid) {
      wire::Cursor header(bytes.data() + 8, kFileHeaderBytes - 8);
      const uint64_t payload_size = header.U64();
      const uint32_t crc = header.U32();
      valid = payload_size == bytes.size() - kFileHeaderBytes &&
              Crc32c(bytes.data() + kFileHeaderBytes, payload_size) == crc;
    }
    if (valid) {
      auto parsed =
          ParseCheckpoint(bytes.substr(kFileHeaderBytes));
      if (parsed.ok() && parsed->wal_seq == seq) {
        result.found = true;
        result.checkpoint = std::move(*parsed);
        result.path = path;
        return result;
      }
    }
    ++result.skipped;
  }
  return result;
}

Status PruneCheckpoints(const std::string& directory, size_t keep,
                        uint64_t* oldest_kept_seq, IoEnv* env) {
  env = ResolveEnv(env);
  if (oldest_kept_seq != nullptr) *oldest_kept_seq = 0;
  if (keep == 0) keep = 1;  // never delete the checkpoint just written
  std::vector<std::pair<uint64_t, std::string>> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    uint64_t seq = 0;
    if (ParseCheckpointName(entry.path().filename().string(), &seq)) {
      candidates.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  const size_t drop =
      candidates.size() > keep ? candidates.size() - keep : 0;
  for (size_t i = 0; i < drop; ++i) {
    if (env->Unlink(candidates[i].second.c_str()) != 0) {
      return IOError("remove checkpoint", candidates[i].second);
    }
  }
  if (oldest_kept_seq != nullptr && drop < candidates.size()) {
    *oldest_kept_seq = candidates[drop].first;
  }
  return Status::OK();
}

}  // namespace bikegraph::stream
