#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "analysis/temporal_graph.h"
#include "stream/event.h"

#include "core/checked_cast.h"

namespace bikegraph::stream {

/// \brief Options for a sliding-window graph maintainer.
struct WindowGraphOptions {
  /// Size of the station universe; event endpoints must be < station_count.
  size_t station_count = 0;
  /// Window length in seconds. The window covers the half-open interval
  /// (watermark - window_seconds, watermark]; 0 means a landmark window
  /// that never expires (the batch semantics). Negative values are
  /// rejected by Ingest.
  int64_t window_seconds = 7 * 86400;
};

/// \brief Everything that changed in a SlidingWindowGraph since the last
/// `DrainDirty()` call: the station pairs whose live trip count moved and
/// the stations whose day/hour profile counters moved. The delta snapshot
/// freeze patches exactly these entries of the previous epoch's CSR and
/// profiles (see snapshot.h).
struct WindowDirtySet {
  /// True when the set is an exhaustive record of the changes since the
  /// last drain. False on the first drain (tracking arms lazily, so
  /// pure-ingest workloads that never freeze pay nothing) and after a
  /// pathological epoch overflowed the pair list — both force the caller
  /// back to a full freeze.
  bool complete = false;
  /// Touched pair keys, `SlidingWindowGraph::PairKey` packed
  /// (u << 32 | v with u <= v; self pairs included), sorted ascending,
  /// deduplicated.
  std::vector<uint64_t> pairs;
  /// Stations whose profile counters changed, sorted ascending.
  std::vector<int32_t> stations;
};

/// \brief A SlidingWindowGraph's complete logical state, for
/// checkpointing. A sliding window serializes its expiry ring (the live
/// events) and rebuilds counters by re-applying them; a landmark window
/// has no ring, so it serializes the aggregates directly.
struct WindowGraphState {
  int64_t watermark_seconds = INT64_MIN;
  int64_t last_event_seconds = INT64_MIN;
  uint64_t ingested_count = 0;
  uint64_t delta_desync_count = 0;
  uint64_t live_count = 0;
  /// One live event per entry, oldest first (sliding windows only).
  struct RingEvent {
    int64_t start_seconds;
    int32_t from, to;
  };
  std::vector<RingEvent> ring;
  /// Landmark windows only: the aggregates themselves.
  std::vector<std::pair<uint64_t, int64_t>> pairs;  ///< (PairKey, trips)
  std::vector<std::array<int64_t, 7>> day;
  std::vector<std::array<int64_t, 24>> hour;
  std::vector<int64_t> endpoint_count;
};

/// \brief Maintains the weighted station graph of a sliding time window
/// over a TripEvent stream, with O(1) amortized deltas per ingest/expiry.
///
/// State per window: trip counts per unordered station pair (self pairs
/// included), per-station day-of-week / hour-of-day endpoint counters
/// (each trip contributes its start time to *both* endpoints — twice to
/// one station for a loop trip — exactly the `ExtractStationProfiles`
/// convention), and an expiry ring of the live events keyed by event
/// time. Events must be ingested in non-decreasing start-time order
/// (relative to each other); the watermark is the max of the newest
/// event's start time and the latest explicit `Advance`, and events
/// whose start time falls out of the window are retired by reversing
/// their deltas. Advancing past wall-clock time never blocks later
/// events whose start times lag it — a trip is reported when it ends.
///
/// Counters are integral, so a window that drains back to empty returns
/// to exactly its initial state (no floating-point residue), and the
/// final landmark window over a whole dataset reproduces the batch
/// pipeline's graph bit for bit when frozen (see snapshot.h).
class SlidingWindowGraph {
 public:
  explicit SlidingWindowGraph(const WindowGraphOptions& options);

  /// Applies one event's deltas and advances the watermark to its start
  /// time if newer (expiring older events). Returns InvalidArgument for
  /// out-of-range stations and FailedPrecondition when the event is
  /// older than the previously ingested event (an explicit Advance never
  /// blocks ingestion).
  Status Ingest(const TripEvent& event);

  /// Advances the watermark without ingesting (e.g. on a quiet stream so
  /// stale trips still expire). Watermarks in the past are a no-op.
  void Advance(CivilTime watermark);

  const WindowGraphOptions& options() const { return options_; }
  size_t station_count() const { return options_.station_count; }

  /// Number of trips currently inside the window.
  size_t trip_count() const { return live_count_; }
  /// Total events ever ingested (monotonic).
  size_t ingested_count() const { return ingested_count_; }
  /// Events retired so far (monotonic).
  size_t expired_count() const { return ingested_count_ - live_count_; }

  /// Stream time: the start time of the newest event seen (or the last
  /// explicit Advance, whichever is later).
  CivilTime watermark() const { return watermark_; }
  /// *Exclusive* lower bound of the half-open window
  /// `(watermark - window_seconds, watermark]`: an event starting exactly
  /// at this instant is already outside the window (`ExpireOlderThan`
  /// retires `start <= watermark - window_seconds`), so
  /// `Contains(window_start())` is false — the first instant inside the
  /// window is one second later. Equal to CivilTime(INT64_MIN) for a
  /// landmark window (and before any event or Advance).
  CivilTime window_start() const;
  /// The authoritative membership predicate for the window's half-open
  /// interval: true iff `window_start() < t <= watermark()` (for a
  /// landmark window: `t <= watermark()`). False before any event or
  /// Advance. An event is live exactly while its start time satisfies
  /// this — locked at the boundary (cutoff, cutoff ± 1) by
  /// stream_window_graph_test.cc.
  bool Contains(CivilTime t) const;

  /// Trips currently recorded between stations `u` and `v` (unordered;
  /// u == v counts loop trips). Zero when absent.
  int64_t TripsBetween(int32_t u, int32_t v) const;

  /// Live per-station endpoint counters at the two temporal
  /// granularities (integral; see class comment for the convention).
  const std::array<int64_t, 7>& DayCounts(int32_t station) const {
    return day_[AsIndex(station)];
  }
  const std::array<int64_t, 24>& HourCounts(int32_t station) const {
    return hour_[AsIndex(station)];
  }
  /// Trip endpoints currently touching `station` (2x for loop trips).
  int64_t EndpointCount(int32_t station) const {
    return endpoint_count_[AsIndex(station)];
  }

  /// The window's per-station profiles in the batch pipeline's format
  /// (`analysis::StationProfiles`), for similarity reweighting.
  analysis::StationProfiles Profiles() const;

  /// Visits every pair with a live trip count, ordered by (u, v)
  /// ascending: `visit(u, v, trips)` with u <= v. Deterministic, so
  /// snapshot freezes are reproducible.
  template <typename Visitor>
  void ForEachPair(Visitor&& visit) const {
    if (sorted_pairs_dirty_) RebuildSortedPairs();
    for (uint64_t key : sorted_pairs_) {
      visit(static_cast<int32_t>(key >> 32),
            static_cast<int32_t>(key & 0xFFFFFFFFu),
            pair_trips_.find(key)->second.trips);
    }
  }

  /// The live pair keys sorted ascending — the sequence ForEachPair
  /// iterates. Exposed so a sharded merge view can k-way merge several
  /// windows' pair sets without materializing a combined copy (see
  /// stream/shard.h). The reference is invalidated by the next mutation.
  const std::vector<uint64_t>& SortedPairKeys() const {
    if (sorted_pairs_dirty_) RebuildSortedPairs();
    return sorted_pairs_;
  }

  /// The packed pair key used by WindowDirtySet::pairs:
  /// (min(u,v) << 32) | max(u,v).
  static uint64_t PairKey(int32_t u, int32_t v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
           static_cast<uint32_t>(v);
  }

  /// Number of distinct station pairs (self pairs included) with at least
  /// one live trip.
  size_t pair_count() const { return pair_trips_.size(); }

  /// Drains the record of changes since the previous drain and starts a
  /// new epoch. The first call arms change tracking (and therefore
  /// returns `complete = false`): ingest-only consumers that never
  /// freeze snapshots pay nothing for tracking they do not use. The
  /// pair list is bounded — an epoch that touches more than
  /// max(4096, 2 × live pairs) distinct pairs overflows and the drain
  /// reports `complete = false`, forcing the next freeze down the full
  /// path (stations are epoch-stamped and never overflow).
  WindowDirtySet DrainDirty();

  /// Forces the next DrainDirty() to report `complete = false` (one
  /// drain only; tracking re-arms as usual). For callers whose freeze
  /// failed *after* draining: those changes are gone from tracking, so
  /// patching an older snapshot later would silently miss them — the
  /// next freeze must rebuild instead.
  void MarkDirtyTrackingIncomplete() { dirty_pairs_overflowed_ = true; }

  /// Times an expiry reversal referenced a station pair the pair map has
  /// no record of — always 0 unless the ring and the map desync (a
  /// library bug). The guard skips the reversal instead of dereferencing
  /// a missing entry; tests assert this stays 0 so any desync surfaces
  /// as a test failure rather than silent memory corruption.
  size_t delta_desync_count() const { return delta_desync_count_; }

  /// Copies out the window's complete logical state (checkpointing).
  WindowGraphState ExportState() const;

  /// Replaces this window's contents with `state` (recovery): a sliding
  /// window re-applies the serialized ring events (recomputing the
  /// day/hour fields from their start times), a landmark window adopts
  /// the serialized aggregates. Dirty tracking restarts unarmed, exactly
  /// as on a fresh graph. Returns DataLoss for internally inconsistent
  /// state (unsorted ring, out-of-range stations, counter mismatches).
  Status RestoreState(const WindowGraphState& state);

 private:
  friend struct WindowGraphTestPeer;
  /// Ring entry: the fields needed to reverse an event's deltas. day/hour
  /// are precomputed so expiry never re-does calendar math.
  struct RingEntry {
    int64_t start_seconds;
    int32_t from, to;
    uint8_t day, hour;
  };

  /// Live trip count plus the epoch stamp that keeps the dirty-pair list
  /// duplicate-free: a pair is appended to the list only when its stamp
  /// trails the current epoch. Packed to 8 bytes so the pair map's node
  /// (and malloc chunk) size is the same as a bare count's — the pair
  /// map is the ingest hot path's biggest cache consumer. 32-bit epochs
  /// wrap after 2^32 drains; DrainDirty re-zeroes every stamp at the
  /// wrap so a stamp from 4 billion epochs ago can never alias the
  /// current one.
  struct PairState {
    int32_t trips = 0;
    uint32_t dirty_epoch = 0;
  };

  // delta is exactly +1 (ingest) or -1 (expiry); the narrow type keeps
  // the pair-counter arithmetic inside int32_t by construction instead
  // of narrowing an int64_t at the accumulation site.
  void ApplyDelta(const RingEntry& e, int32_t delta);
  void MarkPairDirty(uint64_t key, PairState& state);
  void ExpireOlderThan(int64_t cutoff_seconds);
  void PushRing(const RingEntry& e);
  void RebuildSortedPairs() const;

  WindowGraphOptions options_;
  CivilTime watermark_{INT64_MIN};
  /// Start time of the newest ingested event (the ordering bound; the
  /// watermark can run ahead of it via Advance).
  int64_t last_event_seconds_ = INT64_MIN;

  std::unordered_map<uint64_t, PairState> pair_trips_;
  std::vector<std::array<int64_t, 7>> day_;
  std::vector<std::array<int64_t, 24>> hour_;
  std::vector<int64_t> endpoint_count_;

  // Change tracking for delta snapshot freezes. Armed by the first
  // DrainDirty(); until then ApplyDelta skips it entirely, so raw ingest
  // throughput is unchanged for consumers that never freeze.
  bool dirty_tracking_armed_ = false;
  bool dirty_pairs_overflowed_ = false;
  uint32_t dirty_epoch_ = 1;
  std::vector<uint64_t> dirty_pairs_;
  std::vector<int32_t> dirty_stations_;
  std::vector<uint32_t> station_dirty_epoch_;

  // Expiry ring: a circular buffer of the live events in time order
  // (head = oldest). Grows by re-linearising into a larger buffer.
  // Unused (empty) in landmark mode, where nothing ever expires.
  std::vector<RingEntry> ring_;
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;
  size_t live_count_ = 0;
  size_t ingested_count_ = 0;
  size_t delta_desync_count_ = 0;

  // Sorted pair keys for deterministic iteration; rebuilt lazily after
  // the pair set changes.
  mutable std::vector<uint64_t> sorted_pairs_;
  mutable bool sorted_pairs_dirty_ = false;
};

}  // namespace bikegraph::stream
