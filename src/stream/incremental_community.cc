#include "stream/incremental_community.h"

namespace bikegraph::stream {

namespace {

/// Backends that don't honour CommunityOptions::initial_partition take
/// the cold path: a "warm" run there would be an ordinary cold run
/// reported (and, on escalation, re-run) under false pretences. The
/// capability comes from the algorithm registry, so new seedable
/// backends are picked up without touching this file.
bool SupportsWarmStart(community::AlgorithmId id) {
  for (const community::AlgorithmInfo& info :
       community::AlgorithmRegistry()) {
    if (info.id == id) return info.supports_warm_start;
  }
  return false;
}

}  // namespace

Result<RefreshOutcome> IncrementalCommunityTracker::Refresh(
    const graphdb::WeightedGraph& graph, const community::DetectSpec& spec) {
  RefreshOutcome outcome;
  const bool comparable =
      previous_partition_.has_value() &&
      previous_partition_->node_count() == graph.node_count();
  // Drained windows (no edge weight) carry no evidence for the seed's
  // communities: seeding would either be silently skipped (Louvain) or
  // just echo the seed (label propagation), so they run cold.
  const bool seedable = comparable && SupportsWarmStart(spec.algorithm) &&
                        graph.total_weight() > 0.0;
  const bool interval_due =
      policy_.full_refresh_interval > 0 &&
      (refresh_count_ + 1) %
              static_cast<uint64_t>(policy_.full_refresh_interval) ==
          0;

  const auto run = [&](bool with_seed) {
    community::DetectSpec run_spec;
    run_spec.algorithm = spec.algorithm;
    run_spec.options = spec.options;
    if (with_seed) {
      run_spec.options.initial_partition = *previous_partition_;
    } else {
      run_spec.options.initial_partition.reset();
    }
    return community::Detect(graph, run_spec);
  };

  if (seedable && !interval_due) {
    BIKEGRAPH_ASSIGN_OR_RETURN(outcome.result, run(/*with_seed=*/true));
    outcome.warm_started = true;
    outcome.nmi_drift = community::NormalizedMutualInformation(
        *previous_partition_, outcome.result.partition);
    const bool drifted = outcome.nmi_drift < policy_.min_nmi;
    const bool degraded = outcome.result.modularity + 1e-12 <
                          previous_modularity_ - policy_.max_modularity_drop;
    if (drifted || degraded) {
      BIKEGRAPH_ASSIGN_OR_RETURN(community::CommunityResult cold,
                                 run(/*with_seed=*/false));
      outcome.escalated = true;
      ++escalation_count_;
      // Portfolio pick: the cold run usually wins (that's why we
      // escalated), but when it lands in a worse optimum than the warm
      // result we already hold, publishing it would strictly lose
      // quality — keep the better of the two.
      if (cold.modularity >= outcome.result.modularity) {
        outcome.result = std::move(cold);
        outcome.warm_started = false;
      }
      outcome.nmi_drift = community::NormalizedMutualInformation(
          *previous_partition_, outcome.result.partition);
    }
  } else {
    BIKEGRAPH_ASSIGN_OR_RETURN(outcome.result, run(/*with_seed=*/false));
    if (comparable) {
      outcome.nmi_drift = community::NormalizedMutualInformation(
          *previous_partition_, outcome.result.partition);
    }
  }

  previous_partition_ = outcome.result.partition;
  previous_modularity_ = outcome.result.modularity;
  outcome.refresh_count = ++refresh_count_;
  return outcome;
}

void IncrementalCommunityTracker::Reset() {
  previous_partition_.reset();
  previous_modularity_ = 0.0;
  // The refresh counter also phases the full_refresh_interval cadence:
  // leaving it at its pre-reset value would carry the old schedule across
  // the reset, making the first interval after a reset shorter (or
  // longer) than configured. A reset starts the tracker's life over.
  refresh_count_ = 0;
  escalation_count_ = 0;
}

}  // namespace bikegraph::stream
