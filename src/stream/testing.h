#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/checked_cast.h"
#include "core/civil_time.h"
#include "core/rng.h"
#include "stream/event.h"

namespace bikegraph::stream::testing {

/// \brief Deterministic planted-community trip stream for tests and
/// benchmarks (not part of the production surface).
///
/// `stations` stations are split into `communities` equal groups
/// (stations must be divisible by communities, communities > 0); each of
/// `days` days carries `trips_per_day` (> 0) trips in non-decreasing
/// time order, 85% staying inside one group. The stream is fully
/// determined by `seed`, so benches and tests exercising the same
/// scenario stay in sync.
inline std::vector<TripEvent> PlantedStream(size_t stations, int communities,
                                            int days, int trips_per_day,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<TripEvent> events;
  events.reserve(static_cast<size_t>(days) * AsIndex(trips_per_day));
  const CivilTime start = CivilTime::FromCalendar(2020, 3, 2).ValueOrDie();
  const size_t per_group = stations / AsIndex(communities);
  // Clamp so >86400 trips/day never feeds NextBounded a zero bound.
  const auto gap =
      static_cast<uint64_t>(std::max<int64_t>(1, 86400 / trips_per_day));
  int64_t rental_id = 0;
  for (int d = 0; d < days; ++d) {
    int64_t second = 0;
    for (int t = 0; t < trips_per_day; ++t) {
      second += static_cast<int64_t>(rng.NextBounded(gap));
      const int g = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(communities)));
      const auto pick = [&](int group) {
        return static_cast<int32_t>(AsIndex(group) * per_group +
                                    rng.NextBounded(per_group));
      };
      TripEvent e;
      e.rental_id = rental_id++;
      e.from_station = pick(g);
      e.to_station =
          pick(rng.NextDouble() < 0.85
                   ? g
                   : static_cast<int>(rng.NextBounded(
                         static_cast<uint64_t>(communities))));
      e.start_time = start.AddDays(d).AddSeconds(second);
      e.end_time = e.start_time.AddSeconds(500);
      events.push_back(e);
    }
  }
  return events;
}

}  // namespace bikegraph::stream::testing
