#include "stream/shard.h"

#include <cassert>

namespace bikegraph::stream {

ShardedWindowView::ShardedWindowView(
    std::vector<const SlidingWindowGraph*> shards)
    : shards_(std::move(shards)) {
  assert(!shards_.empty() && "a view needs at least one shard");
}

size_t ShardedWindowView::station_count() const {
  return shards_[0]->station_count();
}

size_t ShardedWindowView::trip_count() const {
  size_t total = 0;
  for (const SlidingWindowGraph* shard : shards_) {
    total += shard->trip_count();
  }
  return total;
}

size_t ShardedWindowView::pair_count() const {
  size_t total = 0;
  for (const SlidingWindowGraph* shard : shards_) {
    total += shard->pair_count();
  }
  return total;
}

CivilTime ShardedWindowView::watermark() const {
  CivilTime newest(INT64_MIN);
  for (const SlidingWindowGraph* shard : shards_) {
    if (shard->watermark() > newest) newest = shard->watermark();
  }
  return newest;
}

CivilTime ShardedWindowView::window_start() const {
  // Mirrors SlidingWindowGraph::window_start() over the merged
  // watermark: INT64_MIN for a landmark window (window_seconds <= 0) or
  // before any event, else the exclusive bound watermark - window.
  const int64_t window_seconds = shards_[0]->options().window_seconds;
  const CivilTime mark = watermark();
  if (window_seconds <= 0 || mark == CivilTime(INT64_MIN)) {
    return CivilTime(INT64_MIN);
  }
  return mark.AddSeconds(-window_seconds);
}

int64_t ShardedWindowView::TripsBetween(int32_t u, int32_t v) const {
  // Exclusive pair ownership: at most one shard holds a nonzero count,
  // so the sum needs no router — and stays correct even if routing
  // policy changes.
  int64_t total = 0;
  for (const SlidingWindowGraph* shard : shards_) {
    total += shard->TripsBetween(u, v);
  }
  return total;
}

std::array<int64_t, 7> ShardedWindowView::DayCounts(int32_t station) const {
  std::array<int64_t, 7> merged{};
  for (const SlidingWindowGraph* shard : shards_) {
    const std::array<int64_t, 7>& counts = shard->DayCounts(station);
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += counts[i];
  }
  return merged;
}

std::array<int64_t, 24> ShardedWindowView::HourCounts(
    int32_t station) const {
  std::array<int64_t, 24> merged{};
  for (const SlidingWindowGraph* shard : shards_) {
    const std::array<int64_t, 24>& counts = shard->HourCounts(station);
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += counts[i];
  }
  return merged;
}

analysis::StationProfiles ShardedWindowView::Profiles() const {
  // Sum the *integral* shard counters and convert once: integer addition
  // is exact and order-independent, so the merged profile is bit-equal
  // to the profile a single window over the union stream would export.
  analysis::StationProfiles profiles;
  const size_t n = station_count();
  profiles.day.assign(n, {});
  profiles.hour.assign(n, {});
  for (size_t s = 0; s < n; ++s) {
    const auto station = static_cast<int32_t>(s);
    const std::array<int64_t, 7> day = DayCounts(station);
    const std::array<int64_t, 24> hour = HourCounts(station);
    for (size_t i = 0; i < day.size(); ++i) {
      profiles.day[s][i] = static_cast<double>(day[i]);
    }
    for (size_t i = 0; i < hour.size(); ++i) {
      profiles.hour[s][i] = static_cast<double>(hour[i]);
    }
  }
  return profiles;
}

WindowDirtySet MergeDirtySets(const std::vector<WindowDirtySet>& inputs) {
  WindowDirtySet merged;
  merged.complete = !inputs.empty();
  size_t pair_total = 0;
  size_t station_total = 0;
  for (const WindowDirtySet& in : inputs) {
    merged.complete = merged.complete && in.complete;
    pair_total += in.pairs.size();
    station_total += in.stations.size();
  }
  merged.pairs.reserve(pair_total);
  merged.stations.reserve(station_total);
  for (const WindowDirtySet& in : inputs) {
    merged.pairs.insert(merged.pairs.end(), in.pairs.begin(),
                        in.pairs.end());
    merged.stations.insert(merged.stations.end(), in.stations.begin(),
                           in.stations.end());
  }
  // Pairs are disjoint across shards (exclusive ownership), so sorting
  // alone yields the deduplicated union; stations can be dirtied from
  // several shards and need the unique pass.
  std::sort(merged.pairs.begin(), merged.pairs.end());
  std::sort(merged.stations.begin(), merged.stations.end());
  merged.stations.erase(
      std::unique(merged.stations.begin(), merged.stations.end()),
      merged.stations.end());
  return merged;
}

}  // namespace bikegraph::stream
