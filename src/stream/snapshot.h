#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "analysis/temporal_graph.h"
#include "geo/grid_index.h"
#include "geo/latlon.h"
#include "graphdb/weighted_graph.h"
#include "stream/shard.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {

/// \brief An immutable, epoch-stamped freeze of one window: the flat CSR
/// station graph readers query, plus the per-station profiles and a frozen
/// spatial index over the stations.
///
/// A snapshot never changes after publication, so benches, dashboards and
/// detection all read a consistent graph while ingestion keeps mutating
/// the live window. Readers hold it via `std::shared_ptr`; publishing a
/// newer epoch never invalidates an older one.
struct WindowSnapshot {
  /// Publication sequence number (1, 2, ...; stamped by SnapshotPublisher;
  /// 0 = not yet published).
  uint64_t epoch = 0;
  /// The frozen window's bounds: (window_start, window_end], with
  /// window_start = CivilTime(INT64_MIN) for a landmark window.
  CivilTime window_start;
  CivilTime window_end;
  /// Trips inside the window when it was frozen.
  size_t trip_count = 0;
  /// The projection that produced `graph` (granularity, floor, contrast).
  analysis::TemporalGraphOptions projection;
  /// The window's station graph in the batch pipeline's format: for kNull
  /// edge weight = trip count, for kDay/kHour weights are modulated by
  /// profile similarity exactly as `BuildTemporalGraph` does, so a
  /// landmark window over a full dataset freezes to a bit-identical
  /// graph.
  graphdb::WeightedGraph graph;
  /// Per-station day/hour profiles of the window.
  analysis::StationProfiles profiles;
  /// Frozen (sorted-cell) spatial index over the station positions, or
  /// nullptr when none were given. Ids are station ids. Station
  /// positions never change between windows, so consecutive snapshots
  /// share one immutable index instead of rebuilding it per epoch.
  std::shared_ptr<const geo::GridIndex> station_index;
};

/// \brief Builds the frozen station index snapshots share: one entry per
/// station id (positions must cover ids 0..station_count-1). Build once,
/// hand to every FreezeSnapshot call. Returns nullptr for an empty
/// positions vector.
std::shared_ptr<const geo::GridIndex> BuildFrozenStationIndex(
    const std::vector<geo::LatLon>& station_positions);

/// \brief Freezes the live window into an immutable snapshot (epoch 0;
/// publish it to stamp one). `station_index` (optional, from
/// BuildFrozenStationIndex; must be frozen, or InvalidArgument) is
/// shared into the snapshot. Rejects invalid projection options.
Result<WindowSnapshot> FreezeSnapshot(
    const SlidingWindowGraph& window,
    const analysis::TemporalGraphOptions& projection = {},
    std::shared_ptr<const geo::GridIndex> station_index = nullptr);

/// \brief Sharded-engine overload: freezes the merged view over N shard
/// windows (see ShardedWindowView). Bit-identical to freezing a single
/// window that ingested the union stream — both paths share one freeze
/// implementation templated over the window type, and the merge sums
/// integral counters before any float math. The view's shards must be
/// quiescent and watermark-aligned (the engine's freeze barrier).
Result<WindowSnapshot> FreezeSnapshot(
    const ShardedWindowView& window,
    const analysis::TemporalGraphOptions& projection = {},
    std::shared_ptr<const geo::GridIndex> station_index = nullptr);

/// \brief When FreezeSnapshotDelta patches instead of rebuilding.
struct SnapshotDeltaPolicy {
  /// False forces every freeze down the full-rebuild path.
  bool enabled = true;
  /// Full rebuild when the patched-edge estimate (dirty pairs, plus —
  /// under a temporal projection — every previous edge incident to a
  /// profile-dirty station) exceeds this fraction of the previous
  /// graph's edges: past that point the patch writes most of the CSR
  /// anyway and the O(E log E) rebuild's simplicity wins.
  double max_dirty_fraction = 0.25;
};

/// \brief Freezes the live window by copy-on-write patching of the
/// previous epoch's snapshot: only the station pairs and profiles in
/// `changes` (drained from the window via
/// `SlidingWindowGraph::DrainDirty`, covering exactly the epochs since
/// `previous` was frozen) are recomputed; everything else is
/// block-copied. The result is bit-identical to a full FreezeSnapshot of
/// the same window — locked by stream_snapshot_delta_test.cc across
/// randomized epoch sequences.
///
/// Falls back to a full freeze (reported via `used_delta`) when the
/// change record is incomplete (first drain, overflow), the previous
/// snapshot is incompatible (different station universe or projection),
/// or the dirty fraction exceeds `policy.max_dirty_fraction`.
Result<WindowSnapshot> FreezeSnapshotDelta(
    const SlidingWindowGraph& window, const WindowSnapshot& previous,
    const WindowDirtySet& changes,
    const analysis::TemporalGraphOptions& projection = {},
    std::shared_ptr<const geo::GridIndex> station_index = nullptr,
    const SnapshotDeltaPolicy& policy = {}, bool* used_delta = nullptr);

/// \brief Sharded-engine overload: copy-on-write delta freeze over the
/// merged shard view, with `changes` the merge of the shards' drained
/// dirty sets (see MergeDirtySets in stream/shard.h). Same fallback and
/// bit-identity contract as the single-window overload.
Result<WindowSnapshot> FreezeSnapshotDelta(
    const ShardedWindowView& window, const WindowSnapshot& previous,
    const WindowDirtySet& changes,
    const analysis::TemporalGraphOptions& projection = {},
    std::shared_ptr<const geo::GridIndex> station_index = nullptr,
    const SnapshotDeltaPolicy& policy = {}, bool* used_delta = nullptr);

/// \brief Hands immutable snapshots from the ingestion side to readers.
///
/// `Publish` stamps the next epoch and atomically replaces the current
/// snapshot; `Current` returns the latest (possibly nullptr before the
/// first publish). Readers keep their shared_ptr for as long as they need
/// a consistent view — old epochs stay alive until the last reader drops
/// them.
///
/// Thread safety: the RCU-style hand-off point between the single
/// ingestion thread and any number of reader threads. `Current()` and
/// `epoch()` are safe to call concurrently with `Publish()` from any
/// thread — the snapshot pointer is an atomic shared_ptr, so a reader
/// either sees the previous epoch or the new one, never a torn state,
/// and the returned handle pins its epoch alive regardless of later
/// publishes (locked under TSan by tests/stream_publisher_test.cc).
/// `Publish()` and `RestoreEpoch()` themselves are writer-side: exactly
/// one publishing thread at a time (the StreamEngine's contract — its
/// mutating API is single-threaded).
class SnapshotPublisher {
 public:
  /// Stamps `snapshot` with the next epoch, publishes it, and returns it.
  /// Writer-side (one publisher thread); readers may Current()
  /// concurrently.
  std::shared_ptr<const WindowSnapshot> Publish(WindowSnapshot snapshot);

  /// The most recently published snapshot; nullptr before any publish.
  /// Safe from any thread, never blocks the publisher.
  /// (libstdc++ 12 implements the atomic shared_ptr with an embedded
  /// spinlock whose load path unlocks relaxed; the exclusion is real but
  /// TSan flags the library internals — see tools/tsan_suppressions.txt.)
  std::shared_ptr<const WindowSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Epoch of the latest published snapshot (0 before any publish). The
  /// counter is advanced *after* the snapshot store, so an epoch observed
  /// here is always already retrievable via Current(). Safe from any
  /// thread.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Recovery only (writer-side, no concurrent readers yet): rewinds the
  /// epoch counter so the next Publish stamps `epoch + 1`, and drops the
  /// current snapshot (a recovered engine rebuilds and republishes it, or
  /// lets the next freeze do so). Epoch numbering then continues exactly
  /// where the crashed run left off.
  void RestoreEpoch(uint64_t epoch);

 private:
  std::atomic<std::shared_ptr<const WindowSnapshot>> current_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace bikegraph::stream
