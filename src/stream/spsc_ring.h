#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bikegraph::stream {

/// \brief A bounded single-producer / single-consumer ring queue: the
/// command channel between the engine's ingest thread and one shard
/// worker (see stream/engine.h).
///
/// Exactly one thread may call TryPush and exactly one thread may call
/// TryPop; under that contract the queue is lock-free and wait-free per
/// operation. The producer publishes a slot with a release store of the
/// tail index and the consumer acquires it, so the element copy itself
/// is ordinary (unsynchronized) memory — the classic Lamport ring. The
/// indices are monotonically increasing 64-bit counters masked into the
/// power-of-two slot array, so full/empty never alias (a 10M events/s
/// feed would need ~55,000 years to wrap).
///
/// Capacity is rounded up to a power of two and fixed at construction:
/// a full ring is the producer's backpressure signal (the engine spins
/// with `std::this_thread::yield` rather than growing the queue, which
/// bounds memory and keeps the slow consumer the only thing that
/// throttles ingest).
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t size = 2;
    while (size < capacity) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (retry after yielding;
  /// the consumer frees a slot per pop).
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;
    slots_[static_cast<size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty. On success the popped
  /// element is moved into `out`.
  bool TryPop(T& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[static_cast<size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Elements currently queued. Racy by nature (either side may move
  /// concurrently); use for monitoring, not control flow.
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  /// The rounded-up slot count.
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Producer-written / consumer-read cursor and vice versa, on separate
  /// cache lines so the two sides never false-share.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace bikegraph::stream
