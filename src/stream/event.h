#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "data/dataset.h"

namespace bikegraph::stream {

/// \brief One trip arriving on the live stream: a `data::RentalRecord`
/// already resolved to station ids.
///
/// Station ids are dense indices into whatever station universe the
/// consumer maintains (the paper's 92 fixed stations, or the expanded
/// final-network stations) — the same convention as node ids in the trip
/// multigraph, so a window over TripEvents projects onto exactly the
/// graphs the batch pipeline builds. Event time is `start_time` (the
/// paper's GDay/GHour features are derived from when a trip *began*, and
/// the window maintainer orders and expires by it).
struct TripEvent {
  int64_t rental_id = data::kInvalidId;
  int32_t from_station = -1;
  int32_t to_station = -1;
  CivilTime start_time;
  CivilTime end_time;

  /// Day-of-week feature of this trip (0 = Monday), as attached to trip
  /// edges by the batch pipeline.
  int day() const { return static_cast<int>(start_time.weekday()); }
  /// Hour-of-day feature of this trip (0-23).
  int hour() const { return start_time.hour(); }
};

/// \brief Maps a Location-table id to a station id; `nullopt` means the
/// location has no station (the event is dropped and counted).
using StationMapper = std::function<std::optional<int32_t>(int64_t)>;

/// \brief Converts a dataset's rentals into TripEvents ordered by event
/// time (ties broken by rental id, then input order, so the stream is
/// deterministic). Rentals with a missing foreign key or an unmappable
/// endpoint are skipped; `dropped` (if non-null) receives their count.
std::vector<TripEvent> MakeTripEvents(const data::Dataset& dataset,
                                      const StationMapper& map_location,
                                      size_t* dropped = nullptr);

}  // namespace bikegraph::stream
