#include "stream/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

namespace bikegraph::stream {

namespace {

namespace fs = std::filesystem;

/// Frame header: u32 payload length + u32 CRC32C(payload).
constexpr size_t kFrameHeaderBytes = 8;
/// Segment header: 8-byte magic + u64 first_seq + u32 CRC of the 16
/// preceding bytes.
constexpr char kSegmentMagic[8] = {'B', 'G', 'W', 'A', 'L', '1', '\n', '\0'};
constexpr size_t kSegmentHeaderBytes = 20;
/// Engine records are tens of bytes; an explicit-spec detect record tops
/// out well under 1 KiB. Anything claiming more is framing garbage.
constexpr uint32_t kMaxPayloadBytes = 1u << 16;
/// User-space write-through threshold.
constexpr size_t kWriteBufferBytes = 64u << 10;

std::string SegmentName(uint64_t first_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_seq);
  return buf;
}

/// Parses "wal-<seq20>.log"; false for any other name.
bool ParseSegmentName(const std::string& name, uint64_t* first_seq) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 4; i < 24; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  *first_seq = seq;
  return true;
}

Status IOError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

IoEnv* ResolveEnv(IoEnv* env) {
  return env != nullptr ? env : IoEnv::Default();
}

Status FsyncDirectory(IoEnv* env, const std::string& directory) {
  if (env->FsyncDir(directory.c_str()) != 0) {
    return IOError("fsync directory", directory);
  }
  return Status::OK();
}

/// EAGAIN/EWOULDBLOCK and ENOSPC earn backed-off retries (FaultPolicy);
/// EINTR is handled separately (free), everything else is permanent.
bool IsTransientErrno(int err) {
  if (err == EAGAIN || err == ENOSPC) return true;
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  if (err == EWOULDBLOCK) return true;
#endif
  return false;
}

/// Parses "ckpt-<seq20>.ckpt" (the checkpoint codec's naming, duplicated
/// here so the WAL's ENOSPC self-heal needs no checkpoint dependency).
bool ParseCheckpointFileName(const std::string& name, uint64_t* seq_out) {
  if (name.size() != 30 || name.rfind("ckpt-", 0) != 0 ||
      name.compare(25, 5, ".ckpt") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 5; i < 25; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq_out = seq;
  return true;
}

void EncodeSpec(const community::DetectSpec& spec, std::string* out) {
  wire::PutI32(out, static_cast<int32_t>(spec.algorithm));
  wire::PutU64(out, spec.options.seed);
  wire::PutDouble(out, spec.options.resolution);
  const auto put_opt_i32 = [out](const std::optional<int>& v) {
    wire::PutU8(out, v.has_value() ? 1 : 0);
    wire::PutI32(out, v.value_or(0));
  };
  const auto put_opt_double = [out](const std::optional<double>& v) {
    wire::PutU8(out, v.has_value() ? 1 : 0);
    wire::PutDouble(out, v.value_or(0.0));
  };
  put_opt_i32(spec.options.max_levels);
  put_opt_i32(spec.options.max_sweeps_per_level);
  put_opt_i32(spec.options.max_iterations);
  wire::PutU64(out, spec.options.max_merges);
  put_opt_double(spec.options.min_gain);
  put_opt_double(spec.options.min_improvement);
}

void DecodeSpec(wire::Cursor* in, community::DetectSpec* spec) {
  spec->algorithm = static_cast<community::AlgorithmId>(in->I32());
  spec->options.seed = in->U64();
  spec->options.resolution = in->Double();
  const auto get_opt_i32 = [in](std::optional<int>* v) {
    const bool has = in->U8() != 0;
    const int32_t value = in->I32();
    if (has) *v = value;
  };
  const auto get_opt_double = [in](std::optional<double>* v) {
    const bool has = in->U8() != 0;
    const double value = in->Double();
    if (has) *v = value;
  };
  get_opt_i32(&spec->options.max_levels);
  get_opt_i32(&spec->options.max_sweeps_per_level);
  get_opt_i32(&spec->options.max_iterations);
  spec->options.max_merges = in->U64();
  get_opt_double(&spec->options.min_gain);
  get_opt_double(&spec->options.min_improvement);
}

void EncodePayload(const WalRecord& record, std::string* out) {
  wire::PutU8(out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kEvent:
      wire::PutI64(out, record.event.rental_id);
      wire::PutI32(out, record.event.from_station);
      wire::PutI32(out, record.event.to_station);
      wire::PutI64(out, record.event.start_time.seconds_since_epoch());
      wire::PutI64(out, record.event.end_time.seconds_since_epoch());
      break;
    case WalRecordType::kAdvance:
      wire::PutI64(out, record.watermark_seconds);
      break;
    case WalRecordType::kFlush:
    case WalRecordType::kSnapshot:
      break;
    case WalRecordType::kDetect:
      wire::PutU8(out, record.default_spec ? 1 : 0);
      if (!record.default_spec) EncodeSpec(record.spec, out);
      break;
  }
}

/// False on any structural problem (unknown type, short or oversized
/// payload) — the caller treats that like a CRC failure.
bool DecodePayload(const void* data, size_t size, WalRecord* record) {
  wire::Cursor in(data, size);
  const auto type = static_cast<WalRecordType>(in.U8());
  record->type = type;
  switch (type) {
    case WalRecordType::kEvent:
      record->event.rental_id = in.I64();
      record->event.from_station = in.I32();
      record->event.to_station = in.I32();
      record->event.start_time = CivilTime(in.I64());
      record->event.end_time = CivilTime(in.I64());
      break;
    case WalRecordType::kAdvance:
      record->watermark_seconds = in.I64();
      break;
    case WalRecordType::kFlush:
    case WalRecordType::kSnapshot:
      break;
    case WalRecordType::kDetect:
      record->default_spec = in.U8() != 0;
      if (!record->default_spec) DecodeSpec(&in, &record->spec);
      break;
    default:
      return false;
  }
  return in.ok && in.remaining == 0;
}

std::string EncodeSegmentHeader(uint64_t first_seq) {
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  wire::PutU64(&header, first_seq);
  wire::PutU32(&header, Crc32c(header.data(), header.size()));
  return header;
}

/// Returns false (without touching `first_seq`) for a missing/corrupt
/// header.
bool DecodeSegmentHeader(const std::string& bytes, uint64_t* first_seq) {
  if (bytes.size() < kSegmentHeaderBytes) return false;
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return false;
  }
  wire::Cursor in(bytes.data() + 8, kSegmentHeaderBytes - 8);
  const uint64_t seq = in.U64();
  const uint32_t crc = in.U32();
  if (crc != Crc32c(bytes.data(), 16)) return false;
  *first_seq = seq;
  return true;
}

Result<std::string> ReadWholeFile(IoEnv* env, const std::string& path) {
  int fd = -1;
  for (;;) {
    fd = env->Open(path.c_str(), O_RDONLY, 0);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) return IOError("open", path);
  std::string out;
  char buf[1u << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      env->Close(fd);
      return IOError("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  env->Close(fd);
  return out;
}

/// Sorted (by first_seq) list of the WAL segments under `directory`.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& directory) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    uint64_t first_seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &first_seq)) {
      segments.emplace_back(first_seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  // Table built once, on first use (thread-safe under C++11 statics).
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const DurabilityConfig& config, uint64_t next_seq,
    const std::string& tail_segment_path, uint64_t tail_segment_bytes) {
  if (config.directory.empty()) {
    return Status::InvalidArgument("DurabilityConfig.directory is empty");
  }
  if (next_seq == 0) {
    return Status::InvalidArgument("WAL sequence numbers are 1-based");
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(config));
  writer->env_ = ResolveEnv(config.io_env);
  writer->next_seq_ = next_seq;
  if (tail_segment_path.empty()) {
    BIKEGRAPH_RETURN_NOT_OK(writer->OpenSegment(next_seq));
  } else {
    for (;;) {
      writer->fd_ =
          writer->env_->Open(tail_segment_path.c_str(), O_WRONLY | O_APPEND, 0);
      if (writer->fd_ >= 0 || errno != EINTR) break;
    }
    if (writer->fd_ < 0) return IOError("open", tail_segment_path);
    writer->segment_bytes_ = tail_segment_bytes;
    writer->segment_empty_ = tail_segment_bytes <= kSegmentHeaderBytes;
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Best-effort flush of buffered records; a process exiting cleanly
    // should not lose its own unsynced tail. Errors are unreportable
    // here — recovery's torn-tail handling covers the loss. (WriteBuffer
    // is a no-op on a poisoned writer: its buffered tail is suspect.)
    (void)WriteBuffer();
    env_->Close(fd_);
  }
}

bool WalWriter::GrantDelayedRetry(uint32_t* delayed_left,
                                  int64_t* backoff_ms) {
  if (*delayed_left == 0) return false;
  --*delayed_left;
  ++retry_count_;
  env_->SleepMs(*backoff_ms);
  const int64_t cap = std::max<int64_t>(config_.faults.backoff_max_ms, 1);
  *backoff_ms = std::min<int64_t>(*backoff_ms * 2, cap);
  return true;
}

void WalWriter::TryEnospcSelfHeal() {
  ++enospc_prune_count_;
  // Prune what the oldest retained checkpoint already covers. Errors are
  // deliberately swallowed: the retried write reports the truth either
  // way, and a prune that freed nothing just means the retry fails too.
  const uint64_t through = OldestCheckpointSeq(config_.directory);
  uint64_t pruned = 0;
  (void)PruneWalSegments(config_.directory, through, &pruned, env_);
}

Status WalWriter::OpenSegment(uint64_t first_seq) {
  const std::string path =
      (fs::path(config_.directory) / SegmentName(first_seq)).string();
  uint32_t delayed_left = config_.faults.max_retries;
  int64_t backoff_ms =
      std::max<int64_t>(config_.faults.backoff_initial_ms, 1);
  bool had_transient = false;
  bool self_healed = false;
  for (;;) {
    fd_ = env_->Open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd_ >= 0) break;
    const int err = errno;
    if (err == EINTR) {
      had_transient = true;
      continue;
    }
    if (err == ENOSPC && !self_healed) {
      self_healed = true;
      had_transient = true;
      TryEnospcSelfHeal();
      continue;  // one free retry right after the prune
    }
    if (IsTransientErrno(err) &&
        GrantDelayedRetry(&delayed_left, &backoff_ms)) {
      had_transient = true;
      continue;
    }
    errno = err;
    return IOError("create segment", path);
  }
  if (had_transient) ++transient_recovered_count_;
  buffer_ = EncodeSegmentHeader(first_seq);
  segment_bytes_ = buffer_.size();
  segment_empty_ = true;
  ++segments_opened_;
  BIKEGRAPH_RETURN_NOT_OK(WriteBuffer());
  // The new name must itself survive a crash before any record in it is
  // considered durable.
  return FsyncDirectory(env_, config_.directory);
}

Status WalWriter::WriteBuffer() {
  if (!poisoned_.ok()) return poisoned_;  // no Status copy on the hot path
  if (buffer_.empty()) return Status::OK();
  const char* p = buffer_.data();
  size_t left = buffer_.size();
  uint32_t delayed_left = config_.faults.max_retries;
  int64_t backoff_ms =
      std::max<int64_t>(config_.faults.backoff_initial_ms, 1);
  bool had_transient = false;
  bool self_healed = false;
  while (left > 0) {
    const int64_t n = env_->Write(fd_, p, left);
    if (n > 0) {
      p += n;  // short writes are legal; keep going
      left -= static_cast<size_t>(n);
      continue;
    }
    // write() returning 0 for a nonzero count is a zero-progress oddity;
    // treat it like EAGAIN so it gets the bounded-retry path, not a spin.
    const int err = n < 0 ? errno : EAGAIN;
    if (err == EINTR) {
      had_transient = true;
      continue;
    }
    if (err == ENOSPC && !self_healed) {
      self_healed = true;
      had_transient = true;
      TryEnospcSelfHeal();
      continue;  // one free retry right after the prune
    }
    if (IsTransientErrno(err) &&
        GrantDelayedRetry(&delayed_left, &backoff_ms)) {
      had_transient = true;
      continue;
    }
    errno = err;
    poisoned_ = IOError("write WAL segment", config_.directory);
    return poisoned_;
  }
  if (had_transient) ++transient_recovered_count_;
  buffer_.clear();
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  if (!poisoned_.ok()) return poisoned_;  // no Status copy on the hot path
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  // Rotate *before* the record so a segment's name (its first record's
  // sequence number) stays truthful. An empty segment never rotates —
  // its successor would carry the same first sequence (and name), and a
  // segment under the size limit holding one oversized record is fine.
  if (!segment_empty_ && segment_bytes_ >= config_.segment_bytes) {
    BIKEGRAPH_RETURN_NOT_OK(Sync());
    env_->Close(fd_);
    fd_ = -1;
    BIKEGRAPH_RETURN_NOT_OK(OpenSegment(next_seq_));
  }
  std::string payload;
  EncodePayload(record, &payload);
  wire::PutU32(&buffer_, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&buffer_, Crc32c(payload.data(), payload.size()));
  buffer_.append(payload);
  segment_bytes_ += kFrameHeaderBytes + payload.size();
  segment_empty_ = false;
  ++next_seq_;
  ++records_since_sync_;
  if (buffer_.size() >= kWriteBufferBytes) {
    BIKEGRAPH_RETURN_NOT_OK(WriteBuffer());
  }
  if (config_.sync_interval_records > 0 &&
      records_since_sync_ >= config_.sync_interval_records) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!poisoned_.ok()) return poisoned_;  // no Status copy on the hot path
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  BIKEGRAPH_RETURN_NOT_OK(WriteBuffer());
  if (records_since_sync_ == 0) return Status::OK();
  bool had_transient = false;
  while (env_->Fsync(fd_) != 0) {
    if (errno == EINTR) {
      had_transient = true;
      continue;
    }
    // Any other failed fsync is permanent, whatever the FaultPolicy: the
    // kernel may already have dropped the dirty pages, so retrying until
    // an fsync "succeeds" would certify bytes that never reached the
    // disk (the fsyncgate lesson).
    poisoned_ = IOError("fsync WAL segment", config_.directory);
    return poisoned_;
  }
  if (had_transient) ++transient_recovered_count_;
  records_since_sync_ = 0;
  ++sync_count_;
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& directory,
                              bool repair_torn_tail, IoEnv* env) {
  env = ResolveEnv(env);
  WalReadResult result;
  std::error_code ec;
  if (!fs::exists(directory, ec)) return result;  // empty log
  auto segments = ListSegments(directory);

  // A crash during rotation can leave a final segment whose header never
  // hit the disk; it holds no valid record, so drop it and resume on the
  // previous segment.
  while (!segments.empty()) {
    const std::string& path = segments.back().second;
    BIKEGRAPH_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(env, path));
    uint64_t header_seq = 0;
    if (DecodeSegmentHeader(bytes, &header_seq)) break;
    result.truncated_bytes += bytes.size();
    if (repair_torn_tail) {
      if (env->Unlink(path.c_str()) != 0) {
        return IOError("remove header-torn WAL segment", path);
      }
    }
    segments.pop_back();
  }

  uint64_t expected_seq = 0;  // 0 = not yet anchored
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool is_tail = i + 1 == segments.size();
    const std::string& path = segments[i].second;
    BIKEGRAPH_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(env, path));
    uint64_t header_seq = 0;
    if (!DecodeSegmentHeader(bytes, &header_seq)) {
      // Only the tail may be header-torn, and those were peeled off
      // above.
      return Status::DataLoss("WAL segment '" + path +
                              "' has a corrupt header");
    }
    if (header_seq != segments[i].first) {
      return Status::DataLoss("WAL segment '" + path +
                              "' header seq does not match its filename");
    }
    if (expected_seq != 0 && header_seq != expected_seq) {
      return Status::DataLoss(
          "WAL segment '" + path + "' starts at seq " +
          std::to_string(header_seq) + " but seq " +
          std::to_string(expected_seq) +
          " was expected — a segment is missing or was truncated");
    }

    size_t valid_end = kSegmentHeaderBytes;
    size_t offset = kSegmentHeaderBytes;
    uint64_t seq = header_seq;
    for (;;) {
      valid_end = offset;
      if (offset == bytes.size()) break;
      bool valid = bytes.size() - offset >= kFrameHeaderBytes;
      uint32_t len = 0;
      uint32_t crc = 0;
      WalRecord record;
      if (valid) {
        wire::Cursor frame(bytes.data() + offset, kFrameHeaderBytes);
        len = frame.U32();
        crc = frame.U32();
        valid = len <= kMaxPayloadBytes &&
                bytes.size() - offset - kFrameHeaderBytes >= len;
      }
      if (valid) {
        const char* payload = bytes.data() + offset + kFrameHeaderBytes;
        valid = Crc32c(payload, len) == crc &&
                DecodePayload(payload, len, &record);
      }
      if (!valid) {
        if (!is_tail) {
          return Status::DataLoss(
              "WAL segment '" + path + "' is corrupt at offset " +
              std::to_string(offset) +
              " but is not the tail segment — the records after it "
              "cannot be trusted");
        }
        // Torn tail: keep the valid prefix, discard the rest.
        result.truncated_bytes += bytes.size() - offset;
        if (repair_torn_tail) {
          int fd = -1;
          for (;;) {
            fd = env->Open(path.c_str(), O_WRONLY, 0);
            if (fd >= 0 || errno != EINTR) break;
          }
          if (fd < 0) return IOError("open for repair", path);
          const int rc = env->Truncate(fd, static_cast<int64_t>(offset));
          const int sc = rc == 0 ? env->Fsync(fd) : 0;
          env->Close(fd);
          if (rc != 0 || sc != 0) return IOError("truncate torn tail", path);
        }
        break;
      }
      if (result.records.empty()) result.first_seq = seq;
      result.records.push_back(std::move(record));
      result.last_seq = seq;
      ++seq;
      offset += kFrameHeaderBytes + len;
    }
    expected_seq = seq;
    ++result.segment_count;
    result.tail_segment_path = path;
    // The loop above stopped either at EOF or at the torn point; either
    // way `valid_end` is the segment's valid byte length.
    result.tail_segment_bytes = static_cast<uint64_t>(valid_end);
  }
  return result;
}

Status PruneWalSegments(const std::string& directory, uint64_t through_seq,
                        uint64_t* pruned, IoEnv* env) {
  env = ResolveEnv(env);
  if (pruned != nullptr) *pruned = 0;
  auto segments = ListSegments(directory);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i holds seqs [first_i, first_{i+1}); removable when they
    // are all covered.
    if (segments[i + 1].first <= through_seq + 1) {
      if (env->Unlink(segments[i].second.c_str()) != 0) {
        return IOError("remove WAL segment", segments[i].second);
      }
      if (pruned != nullptr) ++(*pruned);
    }
  }
  return Status::OK();
}

uint64_t OldestCheckpointSeq(const std::string& directory) {
  uint64_t oldest = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    uint64_t seq = 0;
    if (ParseCheckpointFileName(entry.path().filename().string(), &seq)) {
      if (oldest == 0 || seq < oldest) oldest = seq;
    }
  }
  return oldest;
}

bool DirectoryHasDurableState(const std::string& directory) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) return true;
    if (ParseCheckpointFileName(name, &seq)) return true;
    if (name == kDegradedMarkerName) return true;
  }
  return false;
}

void WriteDegradedMarker(const DurabilityConfig& config,
                         const Status& reason) {
  IoEnv* env = ResolveEnv(config.io_env);
  const std::string path =
      (fs::path(config.directory) / kDegradedMarkerName).string();
  int fd = -1;
  for (;;) {
    fd = env->Open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) return;
  const std::string body = reason.ToString() + "\n";
  const char* p = body.data();
  size_t left = body.size();
  while (left > 0) {
    const int64_t n = env->Write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // best-effort: a partial (even empty) marker is still loud
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  (void)env->Fsync(fd);
  env->Close(fd);
  (void)env->FsyncDir(config.directory.c_str());
}

bool HasDegradedMarker(const std::string& directory) {
  std::error_code ec;
  return fs::exists(fs::path(directory) / kDegradedMarkerName, ec);
}

}  // namespace bikegraph::stream
