#pragma once

#include <cstdint>
#include <vector>

#include "core/civil_time.h"
#include "core/io_env.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief Knobs for the hostile-input stream generator. Every scenario is
/// independently toggleable so the chaos suite can isolate which hostile
/// pattern breaks an invariant; with all toggles off the generator emits
/// a well-behaved planted-community stream.
struct ChaosConfig {
  uint64_t seed = 1;
  /// Station universe; stations are split into `planted_communities`
  /// equal blocks and ~85% of trips stay inside their block, so
  /// detection over the hostile stream still has structure to find.
  size_t station_count = 48;
  size_t planted_communities = 4;
  /// Stream clock: events span `[start_seconds, start_seconds +
  /// duration_seconds)` with a watermark advance every
  /// `advance_interval_seconds`.
  int64_t start_seconds = 1'600'000'000;
  int64_t duration_seconds = 2 * 86'400;
  double events_per_second = 0.4;
  /// Must match the consuming engine's `max_lateness_seconds`: the
  /// boundary-flood scenario aims events exactly at the admission
  /// horizon `watermark - max_lateness`.
  int64_t max_lateness_seconds = 1800;
  int64_t advance_interval_seconds = 600;

  /// Demand surges: rate multiplies by 3–6x for 5–20 minutes.
  bool demand_surges = true;
  /// Station outages: a station goes silent for 30–120 minutes
  /// mid-stream (its would-be trips are suppressed).
  bool station_outages = true;
  /// Station additions: a quarter of the stations emit nothing until
  /// their activation time somewhere in the first half of the stream.
  bool station_additions = true;
  /// Clock skew: segments of 10–30 minutes during which every emitted
  /// start time is shifted by a constant ±15-minute offset, so events
  /// arrive consistently early or deeply late relative to the watermark.
  bool clock_skew = true;
  /// Duplicate storms: 1–5 minute bursts that re-deliver recent events
  /// verbatim (same rental_id) at roughly double the base rate.
  bool duplicate_storms = true;
  /// Late-event floods at the horizon boundary: bursts of 50–200 events
  /// whose start times sit within ±2 seconds of the admission cutoff,
  /// probing the exact boundary between "late" and "barely admitted".
  bool late_floods = true;
};

/// \brief One step of a chaos stream: an event to ingest or a watermark
/// to advance to.
struct ChaosAction {
  enum class Kind : uint8_t { kEvent, kAdvance };
  Kind kind = Kind::kEvent;
  TripEvent event{};      // kEvent
  CivilTime watermark{};  // kAdvance
};

/// \brief What the generator emitted, for the suite's invariant checks.
/// All counts describe the *generated* stream; the consuming engine's own
/// counters (late, duplicate, released) are what the invariants reconcile
/// against, so these stay descriptive rather than predictive.
struct ChaosStats {
  uint64_t events = 0;
  uint64_t advances = 0;
  uint64_t fresh_events = 0;  ///< events − duplicate_redeliveries
  uint64_t surge_events = 0;
  uint64_t outage_suppressed = 0;
  uint64_t skewed_events = 0;
  uint64_t duplicate_redeliveries = 0;
  uint64_t boundary_flood_events = 0;
  /// Events already below the admission horizon when emitted (the
  /// consuming engine will count them late).
  uint64_t intended_late = 0;
  // How many times each scenario fired.
  uint64_t surges = 0;
  uint64_t outages = 0;
  uint64_t additions = 0;
  uint64_t skew_segments = 0;
  uint64_t duplicate_storms = 0;
  uint64_t late_floods = 0;
  /// Peak number of emitted events whose start time was still above the
  /// admission horizon — an upper bound on how many events a correct
  /// reorder buffer may hold at once (the bounded-memory invariant).
  uint64_t max_events_in_horizon = 0;
};

struct ChaosStream {
  std::vector<ChaosAction> actions;
  ChaosStats stats;
};

/// \brief Generates a deterministic hostile event stream: same config →
/// same actions, byte for byte. See ChaosConfig for the scenario
/// catalogue and docs/STREAMING.md for how the chaos suite consumes it.
ChaosStream GenerateChaosStream(const ChaosConfig& config);

/// \brief Knobs for the randomized I/O fault dimension of the chaos
/// suite: seeded FaultPlans crossed with the kill-point recovery
/// machinery (tools/ci.sh --faults).
struct FaultChaosConfig {
  uint64_t seed = 1;
  /// Fault rules to draw (each targets one op with one fault kind over
  /// one call-index window; see FaultPlan).
  size_t rules = 4;
  /// Upper bound on consecutive injected failures per rule window.
  /// In transient-only mode a FaultPolicy with `max_retries >=
  /// max_burst` is guaranteed to ride out every drawn schedule.
  uint32_t max_burst = 3;
  /// Transient-only plans draw exclusively EINTR storms, short writes,
  /// and at most one bounded EAGAIN burst — faults a retrying writer
  /// must absorb without poisoning or degrading. Hostile plans (the
  /// default) add hard errors (EIO, EACCES, persistent ENOSPC), lying
  /// fsyncs, torn renames, and an optional small disk capacity; those
  /// may sink the run, and the invariant becomes "recovery is
  /// bit-identical or loudly failed".
  bool transient_only = false;
};

/// \brief Draws a deterministic FaultPlan from a seeded Rng: same config
/// → same plan. Rule windows are spaced (stride 60 on each op's call
/// index) so failure runs never chain across rules — which is what makes
/// the transient-only guarantee above provable rather than probabilistic.
FaultPlan MakeRandomFaultPlan(const FaultChaosConfig& config);

}  // namespace bikegraph::stream
