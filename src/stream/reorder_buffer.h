#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief What to do with an event that arrives later than the reorder
/// horizon allows (its start time is more than `max_lateness_seconds`
/// behind the buffer's watermark).
enum class LateEventPolicy {
  /// Drop the event and count it (`late_dropped_count`). The right choice
  /// for live feeds, where one pathological straggler must not stall a
  /// dashboard.
  kDrop,
  /// Return FailedPrecondition from Push. The right choice for replays,
  /// where a too-late event means the configured horizon is wrong and the
  /// run would silently diverge from the batch pipeline.
  kError,
};

/// \brief Options for a ReorderBuffer.
struct ReorderBufferOptions {
  /// The reorder horizon: an arriving event may start at most this many
  /// seconds before the newest start time seen so far. 0 means strict
  /// order (any regression of start time is late) with pass-through
  /// release — the pre-buffer contract.
  int64_t max_lateness_seconds = 0;
  /// Applied to events older than the horizon.
  LateEventPolicy late_policy = LateEventPolicy::kError;
  /// When true, an event whose `rental_id` was already admitted within
  /// the horizon is suppressed and counted (`duplicate_count`) — real
  /// feeds redeliver. Events with `rental_id == data::kInvalidId` are
  /// never suppressed (there is nothing to match on). A redelivery
  /// arriving after its original's start time has left the horizon is
  /// handled by the late policy instead, which is the only reason the
  /// id set stays bounded.
  bool suppress_duplicates = false;
};

/// \brief A bounded min-heap that re-sorts a nearly-ordered TripEvent
/// stream back into non-decreasing start-time order.
///
/// The paper's temporal graphs key trips by *start* time, but a live feed
/// reports a trip when it *ends* — so arrivals are start-time-ordered only
/// up to the longest trip duration. The buffer absorbs that: events are
/// held in a min-heap keyed by (start time, rental id) and released once
/// the watermark (the newest start time seen, or an explicit
/// `AdvanceWatermark`) has moved at least `max_lateness_seconds` past
/// them — at that point no admissible future arrival can precede them, so
/// the released order equals the fully sorted order. Ties release in
/// rental-id order, keeping a jittered replay deterministic.
///
/// An event older than the horizon at arrival is late: depending on
/// `LateEventPolicy` it is dropped-and-counted or refused. `Flush()`
/// marks end-of-stream and makes every held event releasable.
///
/// The buffer holds at most the events of one horizon (plus, with
/// duplicate suppression, one id per event in the horizon), so memory is
/// bounded by the feed rate times `max_lateness_seconds`.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(const ReorderBufferOptions& options = {});

  /// Admits one event. Returns FailedPrecondition for a too-late event
  /// under LateEventPolicy::kError and after Flush(); OK otherwise (late
  /// drops and duplicate suppressions are OK — check the counters).
  /// Admitted events advance the watermark to their start time.
  Status Push(const TripEvent& event);

  /// Raises the watermark without an event (e.g. wall-clock time on a
  /// quiet stream), making older buffered events releasable. Watermarks
  /// in the past are a no-op.
  void AdvanceWatermark(CivilTime watermark);

  /// Marks end-of-stream: every buffered event becomes releasable (in
  /// order), and further Push calls fail.
  void Flush();

  /// Pops the oldest releasable event, or nullopt when none is ready.
  /// An event is releasable once its start time is at least
  /// `max_lateness_seconds` behind the watermark (or after Flush).
  std::optional<TripEvent> PopReady() {
    if (has_direct_) {
      has_direct_ = false;
      ++released_count_;
      return direct_;
    }
    if (heap_.empty() ||
        (!flushed_ && heap_.top().start_seconds > HorizonCutoff())) {
      return std::nullopt;
    }
    const uint32_t slot = heap_.top().slot;
    heap_.pop();
    free_slots_.push_back(slot);
    ++released_count_;
    return slots_[slot];
  }

  /// True when PopReady would return an event.
  bool HasReady() const {
    if (has_direct_) return true;
    if (heap_.empty()) return false;
    return flushed_ || heap_.top().start_seconds <= HorizonCutoff();
  }

  /// Events currently held (admitted but not yet handed out).
  size_t buffered_count() const {
    return heap_.size() + (has_direct_ ? 1 : 0);
  }

  /// Newest start time seen (or explicit advance); CivilTime(INT64_MIN)
  /// before the first.
  CivilTime watermark() const { return CivilTime(watermark_seconds_); }

  const ReorderBufferOptions& options() const { return options_; }

  /// Admitted events that arrived out of start-time order (start older
  /// than the watermark at arrival) and were re-sorted by the buffer.
  uint64_t reordered_count() const { return reordered_count_; }
  /// Events older than the horizon dropped under LateEventPolicy::kDrop.
  uint64_t late_dropped_count() const { return late_dropped_count_; }
  /// Redelivered events suppressed by duplicate detection.
  uint64_t duplicate_count() const { return duplicate_count_; }
  /// Events released so far via PopReady.
  uint64_t released_count() const { return released_count_; }

 private:
  /// Heap key: (start_seconds, rental_id) ascending — the release order.
  /// The TripEvent itself lives in the slot pool, so sift operations move
  /// 24-byte keys instead of whole events.
  struct HeapKey {
    int64_t start_seconds;
    int64_t rental_id;
    uint32_t slot;
    bool operator>(const HeapKey& other) const {
      if (start_seconds != other.start_seconds) {
        return start_seconds > other.start_seconds;
      }
      return rental_id > other.rental_id;
    }
  };

  /// Oldest start an arriving event may have and still be admitted; also
  /// the newest start a held event may have and be released. The two
  /// meet at equality, which is harmless: an event admitted exactly at
  /// the horizon is immediately releasable, and no younger event can
  /// still arrive before it.
  int64_t HorizonCutoff() const {
    // Before the first event (or advance) nothing is late and nothing is
    // releasable; INT64_MIN encodes both without underflowing the
    // subtraction.
    if (watermark_seconds_ == INT64_MIN) return INT64_MIN;
    return watermark_seconds_ - options_.max_lateness_seconds;
  }
  void EvictExpiredIds(int64_t cutoff);
  /// Parks `event` in the slot pool and pushes its key onto the heap.
  void PushToHeap(const TripEvent& event);

  ReorderBufferOptions options_;
  int64_t watermark_seconds_ = INT64_MIN;
  bool flushed_ = false;

  std::priority_queue<HeapKey, std::vector<HeapKey>, std::greater<HeapKey>>
      heap_;
  /// Slot pool backing the heap keys; free slots are recycled.
  std::vector<TripEvent> slots_;
  std::vector<uint32_t> free_slots_;

  /// One-event bypass: an event that is releasable the moment it arrives
  /// (every in-order event in strict max_lateness = 0 mode) skips the
  /// heap entirely and is handed straight to the next PopReady, keeping
  /// the strict configuration pass-through-cheap.
  TripEvent direct_;
  bool has_direct_ = false;

  // Duplicate suppression: ids admitted whose start is still within the
  // horizon, plus an eviction heap so the set shrinks as the watermark
  // advances.
  std::unordered_set<int64_t> seen_ids_;
  std::priority_queue<std::pair<int64_t, int64_t>,
                      std::vector<std::pair<int64_t, int64_t>>,
                      std::greater<std::pair<int64_t, int64_t>>>
      seen_expiry_;

  uint64_t reordered_count_ = 0;
  uint64_t late_dropped_count_ = 0;
  uint64_t duplicate_count_ = 0;
  uint64_t released_count_ = 0;
};

}  // namespace bikegraph::stream
