#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/civil_time.h"
#include "core/result.h"
#include "stream/event.h"

namespace bikegraph::stream {

/// \brief What to do with an event that arrives later than the reorder
/// horizon allows (its start time is more than `max_lateness_seconds`
/// behind the buffer's watermark).
enum class LateEventPolicy {
  /// Drop the event and count it (`late_dropped_count`). The right choice
  /// for live feeds, where one pathological straggler must not stall a
  /// dashboard.
  kDrop,
  /// Return FailedPrecondition from Push. The right choice for replays,
  /// where a too-late event means the configured horizon is wrong and the
  /// run would silently diverge from the batch pipeline.
  kError,
};

/// \brief Which data structure holds the buffered (not-yet-releasable)
/// events. Both backends release the exact same sequence — (start time,
/// rental id) ascending — so the choice is purely a performance trade.
enum class ReorderBackend {
  /// Min-heap keyed by (start, rental id): O(log buffered) per event,
  /// memory O(buffered events). The right choice for very long horizons
  /// (days+) on sparse feeds, where a second-granularity wheel would
  /// waste memory on empty buckets.
  kHeap,
  /// Hashed timing wheel (Varghese & Lauck): one flat bucket per second
  /// of the horizon, amortized O(1) insert and release, memory
  /// O(max_lateness_seconds) buckets plus the buffered events. The
  /// default — on horizons up to a few hours it releases at nearly the
  /// ordered-ingest cost (see docs/STREAMING.md).
  kWheel,
};

/// \brief Options for a ReorderBuffer.
struct ReorderBufferOptions {
  /// The reorder horizon: an arriving event may start at most this many
  /// seconds before the newest start time seen so far. 0 means strict
  /// order (any regression of start time is late) with pass-through
  /// release — the pre-buffer contract.
  int64_t max_lateness_seconds = 0;
  /// Applied to events older than the horizon.
  LateEventPolicy late_policy = LateEventPolicy::kError;
  /// When true, an event whose `rental_id` was already admitted within
  /// the horizon is suppressed and counted (`duplicate_count`) — real
  /// feeds redeliver. Events with `rental_id == data::kInvalidId` are
  /// never suppressed (there is nothing to match on). A redelivery
  /// arriving after its original's start time has left the horizon is
  /// handled by the late policy instead, which is the only reason the
  /// id set stays bounded.
  bool suppress_duplicates = false;
  /// Buffer data structure; see ReorderBackend.
  ReorderBackend backend = ReorderBackend::kWheel;
  /// Hard cap on the duplicate-suppression id set (0 = unbounded).
  ///
  /// The eviction contract: watermark advance already evicts ids whose
  /// start left the horizon, so the set normally holds one horizon of
  /// events. But the horizon itself is unbounded in *events* — a
  /// duplicate storm that floods distinct ids into one horizon would
  /// grow the set (and its memory) without limit. When an insert would
  /// exceed the cap, the ids with the *oldest start times* are evicted
  /// first (they are the closest to aging out anyway, and a redelivery
  /// of an old event is the most likely to be rejected as late
  /// regardless). Consequence: under a storm deeper than the cap, a
  /// redelivery of an evicted id is re-admitted instead of suppressed —
  /// bounded memory is bought with exactness at the storm's tail.
  /// `duplicate_ids_high_water()` and `duplicate_ids_evicted()` expose
  /// when that trade actually happened.
  size_t max_duplicate_ids = size_t{1} << 20;
};

/// \brief A ReorderBuffer's complete logical state, for checkpointing.
/// Backend-neutral: `buffered` lists the held events in release order, so
/// a state exported from a wheel restores into a heap bit-identically
/// (release order is (start, rental id) ascending either way).
struct ReorderBufferState {
  int64_t watermark_seconds = INT64_MIN;
  bool flushed = false;
  uint64_t reordered_count = 0;
  uint64_t late_dropped_count = 0;
  uint64_t duplicate_count = 0;
  uint64_t released_count = 0;
  uint64_t duplicate_ids_high_water = 0;
  uint64_t duplicate_ids_evicted = 0;
  /// Held (admitted, unreleased) events in release order.
  std::vector<TripEvent> buffered;
  /// Duplicate-suppression set entries: (start_seconds, rental_id).
  std::vector<std::pair<int64_t, int64_t>> seen;
};

/// \brief A bounded buffer that re-sorts a nearly-ordered TripEvent
/// stream back into non-decreasing start-time order.
///
/// The paper's temporal graphs key trips by *start* time, but a live feed
/// reports a trip when it *ends* — so arrivals are start-time-ordered only
/// up to the longest trip duration. The buffer absorbs that: events are
/// held (in a min-heap or a second-granularity timing wheel, see
/// ReorderBackend) and released once the watermark (the newest start time
/// seen, or an explicit `AdvanceWatermark`) has moved at least
/// `max_lateness_seconds` past them — at that point no admissible future
/// arrival can precede them, so the released order equals the fully
/// sorted order. Ties release in rental-id order, keeping a jittered
/// replay deterministic.
///
/// An event older than the horizon at arrival is late: depending on
/// `LateEventPolicy` it is dropped-and-counted or refused. `Flush()`
/// marks end-of-stream and makes every held event releasable.
///
/// The buffer holds at most the events of one horizon (plus, with
/// duplicate suppression, one id per event in the horizon), so event
/// memory is bounded by the feed rate times `max_lateness_seconds`; the
/// wheel backend additionally keeps one (mostly empty) bucket per horizon
/// second.
class ReorderBuffer {
 public:
  explicit ReorderBuffer(const ReorderBufferOptions& options = {});

  /// Admits one event. Returns FailedPrecondition for a too-late event
  /// under LateEventPolicy::kError and after Flush(); OK otherwise (late
  /// drops and duplicate suppressions are OK — check the counters).
  /// Admitted events advance the watermark to their start time.
  Status Push(const TripEvent& event);

  /// Raises the watermark without an event (e.g. wall-clock time on a
  /// quiet stream), making older buffered events releasable. Watermarks
  /// in the past are a no-op.
  void AdvanceWatermark(CivilTime watermark);

  /// Marks end-of-stream: every buffered event becomes releasable (in
  /// order), and further Push calls fail.
  void Flush();

  /// Pops the oldest releasable event, or nullopt when none is ready.
  /// An event is releasable once its start time is at least
  /// `max_lateness_seconds` behind the watermark (or after Flush).
  std::optional<TripEvent> PopReady() {
    if (has_direct_) {
      has_direct_ = false;
      ++released_count_;
      return direct_;
    }
    if (options_.backend == ReorderBackend::kWheel) {
      if (ready_head_ == ready_.size()) {
        ready_.clear();  // keeps capacity: steady state never reallocates
        ready_head_ = 0;
        // Pull the next releasable second's bucket (if any) into the
        // FIFO; ForEachReady is the copy-free batch path.
        if (wheel_count_ == 0 ||
            !DrainWheelNextSecond(WheelReleaseLimit())) {
          return std::nullopt;
        }
      }
      ++released_count_;
      return ready_[ready_head_++];
    }
    if (heap_.empty() ||
        (!flushed_ && heap_.top().start_seconds > HorizonCutoff())) {
      return std::nullopt;
    }
    const uint32_t slot = heap_.top().slot;
    heap_.pop();
    free_slots_.push_back(slot);
    ++released_count_;
    return slots_[slot];
  }

  /// Releases every currently-releasable event in release order without
  /// per-event copies: `visit(const TripEvent&)` is called with a
  /// reference into the buffer's storage and must return a Status (and
  /// must not re-enter the buffer). Iteration stops at the first non-OK
  /// status (that event is already consumed) and returns it; the
  /// remaining events stay buffered. The batch equivalent of a PopReady
  /// loop — the engine's ingest drain uses it so a released event is
  /// moved exactly once (into the window), never through an optional.
  /// For the wheel backend this IS the release walk: Push only parks
  /// events in their second's bucket, and this walk visits the
  /// releasable seconds straight out of the buckets.
  template <typename Visitor>
  Status ForEachReady(Visitor&& visit) {
    if (has_direct_) {
      has_direct_ = false;
      ++released_count_;
      Status status = visit(static_cast<const TripEvent&>(direct_));
      if (!status.ok()) return status;
    }
    if (options_.backend == ReorderBackend::kWheel) {
      // Leftover stragglers first (they predate every bucketed second),
      // then the bucket walk.
      while (ready_head_ < ready_.size()) {
        ++released_count_;
        Status status =
            visit(static_cast<const TripEvent&>(ready_[ready_head_++]));
        if (!status.ok()) return status;
      }
      ready_.clear();
      ready_head_ = 0;
      if (wheel_count_ > 0) {
        const int64_t limit = WheelReleaseLimit();
        if (limit > drained_upto_) {
          return WalkWheel(limit, std::forward<Visitor>(visit));
        }
      }
      return Status::OK();
    }
    while (!heap_.empty() &&
           (flushed_ || heap_.top().start_seconds <= HorizonCutoff())) {
      const uint32_t slot = heap_.top().slot;
      heap_.pop();
      free_slots_.push_back(slot);
      ++released_count_;
      Status status = visit(static_cast<const TripEvent&>(slots_[slot]));
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  /// True when PopReady would return an event.
  bool HasReady() const {
    if (has_direct_) return true;
    if (options_.backend == ReorderBackend::kWheel) {
      if (ready_head_ < ready_.size()) return true;
      return wheel_count_ > 0 &&
             HasOccupiedSecondUpTo(WheelReleaseLimit());
    }
    if (heap_.empty()) return false;
    return flushed_ || heap_.top().start_seconds <= HorizonCutoff();
  }

  /// Events currently held (admitted but not yet handed out).
  size_t buffered_count() const {
    return heap_.size() + wheel_count_ + (ready_.size() - ready_head_) +
           (has_direct_ ? 1 : 0);
  }

  /// Newest start time seen (or explicit advance); CivilTime(INT64_MIN)
  /// before the first.
  CivilTime watermark() const { return CivilTime(watermark_seconds_); }

  const ReorderBufferOptions& options() const { return options_; }

  /// Admitted events that arrived out of start-time order (start older
  /// than the watermark at arrival) and were re-sorted by the buffer.
  uint64_t reordered_count() const { return reordered_count_; }
  /// Events older than the horizon dropped under LateEventPolicy::kDrop.
  uint64_t late_dropped_count() const { return late_dropped_count_; }
  /// Redelivered events suppressed by duplicate detection.
  uint64_t duplicate_count() const { return duplicate_count_; }
  /// Events released so far via PopReady.
  uint64_t released_count() const { return released_count_; }
  /// Peak size the duplicate-suppression id set ever reached — the
  /// memory high-water mark of the storm-exposed structure. Bounded by
  /// `options().max_duplicate_ids` when that cap is set.
  uint64_t duplicate_ids_high_water() const {
    return duplicate_ids_high_water_;
  }
  /// Ids evicted by the `max_duplicate_ids` cap (not by ordinary horizon
  /// aging). Non-zero means a storm was deep enough that some
  /// redeliveries may have been re-admitted; see the cap's contract.
  uint64_t duplicate_ids_evicted() const { return duplicate_ids_evicted_; }

  /// Copies out the buffer's complete logical state (checkpointing).
  /// The buffer itself is not disturbed.
  ReorderBufferState ExportState() const;

  /// Replaces this buffer's contents with `state` (recovery). The
  /// options stay as constructed — state is backend-neutral, so a
  /// checkpoint taken under one backend restores under the other.
  /// Returns DataLoss for internally inconsistent state (unsorted or
  /// beyond-watermark buffered events, duplicate seen ids).
  Status RestoreState(const ReorderBufferState& state);

 private:
  /// End-of-chain marker for the overflow node links.
  static constexpr uint32_t kNilNode = 0xFFFFFFFFu;

  /// Heap key: (start_seconds, rental_id) ascending — the release order.
  /// The TripEvent itself lives in the slot pool, so sift operations move
  /// 24-byte keys instead of whole events.
  struct HeapKey {
    int64_t start_seconds;
    int64_t rental_id;
    uint32_t slot;
    bool operator>(const HeapKey& other) const {
      if (start_seconds != other.start_seconds) {
        return start_seconds > other.start_seconds;
      }
      return rental_id > other.rental_id;
    }
  };

  /// Oldest start an arriving event may have and still be admitted; also
  /// the newest start a held event may have and be released. The two
  /// meet at equality, which is harmless: an event admitted exactly at
  /// the horizon is immediately releasable, and no younger event can
  /// still arrive before it.
  int64_t HorizonCutoff() const {
    // Before the first event (or advance) nothing is late and nothing is
    // releasable; INT64_MIN encodes both without underflowing the
    // subtraction.
    if (watermark_seconds_ == INT64_MIN) return INT64_MIN;
    return watermark_seconds_ - options_.max_lateness_seconds;
  }
  void EvictExpiredIds(int64_t cutoff);
  /// Parks `event` in the heap's slot pool, so heap sifts move 24-byte
  /// keys instead of whole events.
  uint32_t AllocSlot(const TripEvent& event);
  /// Parks `event` in the slot pool and pushes its key onto the heap.
  void PushToHeap(const TripEvent& event);

  // --- wheel backend ---
  size_t WheelBucket(int64_t second) const {
    // Power-of-two mask; two's-complement & handles negative seconds.
    return static_cast<size_t>(static_cast<uint64_t>(second) &
                               (primary_.size() - 1));
  }
  /// The newest second the wheel may release: everything after Flush,
  /// otherwise the horizon cutoff.
  int64_t WheelReleaseLimit() const {
    return flushed_ ? watermark_seconds_ : HorizonCutoff();
  }
  /// Allocates the bucket array.
  void EnsureWheel();
  /// Parks an event in its second's bucket.
  void PushToWheel(const TripEvent& event);
  /// Parks a releasable-on-arrival event: in its bucket when that second
  /// has not been walked yet, otherwise into the ready FIFO at its
  /// sorted position.
  void ParkWheelReleasable(const TripEvent& event);
  /// Collects an *overflowing* bucket's events into scratch_ in release
  /// order (one bucket == one second, so rental id is the whole
  /// tie-break; stable, so same-id redeliveries keep arrival order) and
  /// clears the bucket.
  void GatherOverflowBucket(int64_t second, size_t bucket);
  /// Moves one bucket's events into the ready FIFO in release order and
  /// clears it.
  void DrainBucketToReady(int64_t second, size_t bucket);
  /// Moves every bucket with second <= `upto` (inclusive) into the ready
  /// FIFO in second order — the rare big-jump fallback that keeps held
  /// seconds within one wheel revolution; releases normally happen
  /// straight off the buckets in WalkWheel.
  void DrainWheelUpTo(int64_t upto);
  /// Moves the single oldest occupied second in (drained_upto_, limit]
  /// into the ready FIFO; false when there is none (the PopReady path).
  bool DrainWheelNextSecond(int64_t limit);
  /// True when some bucket holds a second in (drained_upto_, limit].
  bool HasOccupiedSecondUpTo(int64_t limit) const;
  /// Inserts an immediately-releasable event into the ready FIFO at its
  /// sorted position (only same-second ties at the tail ever shift).
  void FifoInsertSorted(const TripEvent& event);

  /// The one occupied-second iteration all wheel walks share: calls
  /// `fn(second, bucket)` for each occupied second in
  /// (from_exclusive, limit] in ascending order, advancing one occupancy
  /// word (64 seconds) per probe and iterating only the set bits inside
  /// it. `fn` returns false to stop early. The wheel is whole words, so
  /// one word's bits map onto 64 consecutive seconds with no mid-word
  /// wrap. Static over a caller-chosen bitmap so const and mutating
  /// walks share the exact same bit-window arithmetic.
  template <typename Fn>
  static void ForEachOccupiedSecond(const std::vector<uint64_t>& occupancy,
                                    size_t bucket_count,
                                    int64_t from_exclusive, int64_t limit,
                                    Fn&& fn) {
    int64_t second = from_exclusive + 1;
    while (second <= limit) {
      const auto bucket = static_cast<size_t>(
          static_cast<uint64_t>(second) & (bucket_count - 1));
      const auto bit = static_cast<unsigned>(bucket & 63);
      const int64_t word_last = second + (63 - static_cast<int64_t>(bit));
      const int64_t span_last = word_last < limit ? word_last : limit;
      uint64_t bits = occupancy[bucket >> 6] >> bit;
      const auto nbits = static_cast<unsigned>(span_last - second + 1);
      if (nbits < 64) bits &= (uint64_t{1} << nbits) - 1;
      while (bits != 0) {
        const auto offset = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        if (!fn(second + static_cast<int64_t>(offset), bucket + offset)) {
          return;
        }
      }
      second = span_last + 1;
    }
  }

  /// The hot release path: visits every bucketed event with second in
  /// (drained_upto_, limit] in (second, rental id) order, consuming
  /// them in place — no FIFO round trip. On visitor error the
  /// unconsumed remainder stays parked and the walk stops.
  template <typename Visitor>
  Status WalkWheel(int64_t limit, Visitor&& visit) {
    Status status = Status::OK();
    ForEachOccupiedSecond(
        occupancy_, primary_.size(), drained_upto_, limit,
        [&](int64_t second, size_t bucket) {
          const uint64_t occ_bit = uint64_t{1} << (bucket & 63);
          if (overflow_count_ == 0 ||
              (overflow_occupancy_[bucket >> 6] & occ_bit) == 0) {
            // The overwhelmingly common one-event second: visit straight
            // out of the flat primary slot.
            occupancy_[bucket >> 6] &= ~occ_bit;
            --wheel_count_;
            ++released_count_;
            status = visit(static_cast<const TripEvent&>(primary_[bucket]));
            if (!status.ok()) {
              drained_upto_ = second;
              return false;
            }
            return wheel_count_ > 0;
          }
          GatherOverflowBucket(second, bucket);
          for (size_t i = 0; i < scratch_.size(); ++i) {
            ++released_count_;
            --wheel_count_;
            status = visit(static_cast<const TripEvent&>(scratch_[i]));
            if (!status.ok()) {
              // The unconsumed tail is already in release order; it
              // goes to the FIFO (empty by now — ForEachReady drained
              // it before walking), which the next release reads first.
              for (size_t j = i + 1; j < scratch_.size(); ++j) {
                ready_.push_back(scratch_[j]);
              }
              wheel_count_ -= scratch_.size() - i - 1;
              drained_upto_ = second;
              return false;
            }
          }
          return wheel_count_ > 0;
        });
    if (!status.ok()) return status;
    drained_upto_ = limit;
    return Status::OK();
  }

  ReorderBufferOptions options_;
  int64_t watermark_seconds_ = INT64_MIN;
  bool flushed_ = false;

  std::priority_queue<HeapKey, std::vector<HeapKey>, std::greater<HeapKey>>
      heap_;
  /// Slot pool backing the heap keys; free slots are recycled.
  std::vector<TripEvent> slots_;
  std::vector<uint32_t> free_slots_;

  /// Wheel state, sized for the common one-event-per-second case: one
  /// flat inline event slot per horizon second (`primary_`), occupancy
  /// bitmaps so release walks skip 64 empty buckets per word, and a
  /// small shared `overflow_` list for the rare seconds carrying more
  /// than one event (`overflow_occupancy_` marks them). The flat layout
  /// keeps the buffer's cache footprint to the slots actually touched —
  /// per-bucket vectors measurably slowed the *window's* delta
  /// bookkeeping through cache pressure. All vectors keep their
  /// capacity across drains, so the steady state allocates nothing.
  std::vector<TripEvent> primary_;
  std::vector<uint64_t> occupancy_;
  std::vector<uint64_t> overflow_occupancy_;
  /// Overflow storage: a node pool (`overflow_` events, `overflow_next_`
  /// links, `overflow_free_` recycling) of per-bucket chains headed by
  /// `overflow_head_` (allocated on the first overflow ever), newest
  /// first. A gather touches only its own second's chain, so release
  /// stays O(that second's events) no matter how many other seconds
  /// overflow.
  std::vector<TripEvent> overflow_;
  std::vector<uint32_t> overflow_next_;
  std::vector<uint32_t> overflow_head_;
  std::vector<uint32_t> overflow_free_;
  size_t overflow_count_ = 0;
  /// Reused gather buffer for overflowing seconds.
  std::vector<TripEvent> scratch_;
  size_t wheel_count_ = 0;
  /// The release walk's cursor: every second <= this has been released
  /// (or spilled to the ready FIFO), so buckets only hold seconds in
  /// (drained_upto_, watermark] — less than one wheel revolution, which
  /// is what makes one bucket one second. Never beyond the release
  /// limit, so a releasable-on-arrival straggler at an already-walked
  /// second takes the FIFO path instead of stranding in a bucket.
  int64_t drained_upto_ = INT64_MIN;
  /// Already-released events awaiting PopReady, in release order; all
  /// at seconds <= drained_upto_. Normally empty — ForEachReady visits
  /// buckets directly — it carries PopReady pulls, emergency spills,
  /// and boundary stragglers.
  std::vector<TripEvent> ready_;
  size_t ready_head_ = 0;

  /// One-event bypass: an event that is releasable the moment it arrives
  /// (every in-order event in strict max_lateness = 0 mode) skips the
  /// heap/wheel entirely and is handed straight to the next PopReady,
  /// keeping the strict configuration pass-through-cheap.
  TripEvent direct_;
  bool has_direct_ = false;

  // Duplicate suppression: ids admitted whose start is still within the
  // horizon, plus an eviction heap so the set shrinks as the watermark
  // advances.
  std::unordered_set<int64_t> seen_ids_;
  std::priority_queue<std::pair<int64_t, int64_t>,
                      std::vector<std::pair<int64_t, int64_t>>,
                      std::greater<std::pair<int64_t, int64_t>>>
      seen_expiry_;

  uint64_t reordered_count_ = 0;
  uint64_t late_dropped_count_ = 0;
  uint64_t duplicate_count_ = 0;
  uint64_t released_count_ = 0;
  uint64_t duplicate_ids_high_water_ = 0;
  uint64_t duplicate_ids_evicted_ = 0;
};

}  // namespace bikegraph::stream
