#include "stream/window_graph.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/logging.h"

#include "core/checked_cast.h"

namespace bikegraph::stream {

SlidingWindowGraph::SlidingWindowGraph(const WindowGraphOptions& options)
    : options_(options) {
  day_.assign(options_.station_count, {});
  hour_.assign(options_.station_count, {});
  endpoint_count_.assign(options_.station_count, 0);
  station_dirty_epoch_.assign(options_.station_count, 0);
}

CivilTime SlidingWindowGraph::window_start() const {
  if (options_.window_seconds <= 0 ||
      watermark_.seconds_since_epoch() == INT64_MIN) {
    return CivilTime(INT64_MIN);
  }
  return watermark_.AddSeconds(-options_.window_seconds);
}

bool SlidingWindowGraph::Contains(CivilTime t) const {
  const int64_t seconds = t.seconds_since_epoch();
  const int64_t mark = watermark_.seconds_since_epoch();
  if (mark == INT64_MIN) return false;  // no event or Advance yet
  if (seconds > mark) return false;
  if (options_.window_seconds <= 0) return true;  // landmark
  // Half-open (mark - W, mark]: the exclusive bound mirrors
  // ExpireOlderThan, which retires start <= mark - W.
  return seconds > mark - options_.window_seconds;
}

Status SlidingWindowGraph::Ingest(const TripEvent& event) {
  if (options_.window_seconds < 0) {
    // Refuse loudly rather than silently behaving like a landmark
    // window: a negative length is a sign bug or a misconverted
    // duration, and "nothing ever expires" is the worst possible guess.
    return Status::InvalidArgument("window_seconds must be >= 0");
  }
  const auto n = static_cast<int64_t>(options_.station_count);
  if (event.from_station < 0 || event.from_station >= n ||
      event.to_station < 0 || event.to_station >= n) {
    return Status::InvalidArgument("trip event endpoint out of range");
  }
  // Ordering is enforced against the last *ingested* event, not the
  // advanced watermark: a live caller advances to wall-clock time during
  // lulls, and trips arriving afterwards legitimately carry older start
  // times (a trip is reported when it ends). The expiry ring only needs
  // event order to be non-decreasing among events themselves.
  if (event.start_time.seconds_since_epoch() < last_event_seconds_) {
    return Status::FailedPrecondition(
        "trip event at " + event.start_time.ToString() +
        " is older than the previously ingested event (the stream must be "
        "ingested in start-time order)");
  }
  RingEntry entry;
  entry.start_seconds = event.start_time.seconds_since_epoch();
  entry.from = event.from_station;
  entry.to = event.to_station;
  entry.day = static_cast<uint8_t>(event.day());
  entry.hour = static_cast<uint8_t>(event.hour());

  ApplyDelta(entry, +1);
  ++live_count_;
  ++ingested_count_;
  last_event_seconds_ = entry.start_seconds;
  if (watermark_ < event.start_time) watermark_ = event.start_time;
  // Landmark windows never expire, so their events need no expiry
  // bookkeeping — skipping the ring keeps a whole-season replay flat in
  // memory (modulo the pair map). An event already past the advanced
  // watermark's window is pushed then immediately retired by the expiry
  // pass below, leaving the counters consistent.
  if (options_.window_seconds > 0) {
    PushRing(entry);
    ExpireOlderThan(watermark_.seconds_since_epoch() -
                    options_.window_seconds);
  }
  return Status::OK();
}

void SlidingWindowGraph::Advance(CivilTime watermark) {
  if (watermark <= watermark_) return;
  watermark_ = watermark;
  if (options_.window_seconds > 0) {
    ExpireOlderThan(watermark.seconds_since_epoch() -
                    options_.window_seconds);
  }
}

int64_t SlidingWindowGraph::TripsBetween(int32_t u, int32_t v) const {
  auto it = pair_trips_.find(PairKey(u, v));
  return it == pair_trips_.end() ? 0 : it->second.trips;
}

void SlidingWindowGraph::MarkPairDirty(uint64_t key, PairState& state) {
  if (state.dirty_epoch == dirty_epoch_) return;
  state.dirty_epoch = dirty_epoch_;
  if (dirty_pairs_overflowed_) return;
  // A pair that dies and is re-created within one epoch re-enters the
  // list (its fresh map entry carries a stale stamp), so the list is
  // deduplicated at drain time; the cap bounds it against pathological
  // churn loops in between.
  if (dirty_pairs_.size() >=
      std::max<size_t>(4096, 2 * pair_trips_.size())) {
    dirty_pairs_overflowed_ = true;
    return;
  }
  dirty_pairs_.push_back(key);
}

WindowDirtySet SlidingWindowGraph::DrainDirty() {
  WindowDirtySet out;
  out.complete = dirty_tracking_armed_ && !dirty_pairs_overflowed_;
  if (out.complete) {
    out.pairs = std::move(dirty_pairs_);
    std::sort(out.pairs.begin(), out.pairs.end());
    out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                    out.pairs.end());
    out.stations = std::move(dirty_stations_);
    std::sort(out.stations.begin(), out.stations.end());
  }
  dirty_pairs_.clear();
  dirty_stations_.clear();
  dirty_pairs_overflowed_ = false;
  dirty_tracking_armed_ = true;
  ++dirty_epoch_;
  if (dirty_epoch_ == 0) {
    // 32-bit epoch wrapped: wipe every stamp so nothing from 2^32
    // drains ago aliases the new epoch. Once per ~136 years of
    // per-second freezes.
    for (auto& [key, state] : pair_trips_) state.dirty_epoch = 0;
    std::fill(station_dirty_epoch_.begin(), station_dirty_epoch_.end(), 0);
    dirty_epoch_ = 1;
  }
  return out;
}

analysis::StationProfiles SlidingWindowGraph::Profiles() const {
  analysis::StationProfiles profiles;
  const size_t n = options_.station_count;
  profiles.day.assign(n, {});
  profiles.hour.assign(n, {});
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < 7; ++d) {
      profiles.day[s][d] = static_cast<double>(day_[s][d]);
    }
    for (size_t h = 0; h < 24; ++h) {
      profiles.hour[s][h] = static_cast<double>(hour_[s][h]);
    }
  }
  return profiles;
}

void SlidingWindowGraph::ApplyDelta(const RingEntry& e, int32_t delta) {
  const uint64_t key = PairKey(e.from, e.to);
  if (delta > 0) {
    auto [it, inserted] = pair_trips_.try_emplace(key);
    it->second.trips += delta;
    if (inserted) sorted_pairs_dirty_ = true;
    if (dirty_tracking_armed_) MarkPairDirty(key, it->second);
  } else {
    auto it = pair_trips_.find(key);
    if (it == pair_trips_.end()) {
      // An expiry reversal for a pair the map has no record of means the
      // ring and the pair map desynced — a library bug. Dereferencing
      // end() here would be silent memory stomping; skip the whole
      // reversal (counters included, they are just as suspect) and make
      // the corruption loud instead.
      assert(false && "expiry reversal for an unknown station pair");
      ++delta_desync_count_;
      BIKEGRAPH_LOG(Error)
          << "SlidingWindowGraph: expiry reversal for unknown pair ("
          << e.from << ", " << e.to << "); skipping reversal "
          << "(expiry ring desynced from the pair map)";
      return;
    }
    it->second.trips += delta;
    if (dirty_tracking_armed_) MarkPairDirty(key, it->second);
    if (it->second.trips == 0) {
      pair_trips_.erase(it);
      sorted_pairs_dirty_ = true;
    }
  }
  for (int32_t station : {e.from, e.to}) {
    day_[AsIndex(station)][e.day] += delta;
    hour_[AsIndex(station)][e.hour] += delta;
    endpoint_count_[AsIndex(station)] += delta;
    if (dirty_tracking_armed_ &&
        station_dirty_epoch_[AsIndex(station)] != dirty_epoch_) {
      station_dirty_epoch_[AsIndex(station)] = dirty_epoch_;
      dirty_stations_.push_back(station);
    }
  }
}

void SlidingWindowGraph::ExpireOlderThan(int64_t cutoff_seconds) {
  while (ring_count_ > 0) {
    const RingEntry& oldest = ring_[ring_head_];
    if (oldest.start_seconds > cutoff_seconds) break;
    ApplyDelta(oldest, -1);
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_count_;
    --live_count_;
  }
}

void SlidingWindowGraph::PushRing(const RingEntry& e) {
  if (ring_count_ == ring_.size()) {
    // Re-linearise into a buffer of the next power of two (PairKey-style
    // masking keeps the wrap branch-free on the hot path).
    const size_t new_cap = std::max<size_t>(1024, ring_.size() * 2);
    std::vector<RingEntry> grown(new_cap);
    for (size_t i = 0; i < ring_count_; ++i) {
      grown[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = e;
  ++ring_count_;
}

WindowGraphState SlidingWindowGraph::ExportState() const {
  WindowGraphState state;
  state.watermark_seconds = watermark_.seconds_since_epoch();
  state.last_event_seconds = last_event_seconds_;
  state.ingested_count = ingested_count_;
  state.delta_desync_count = delta_desync_count_;
  state.live_count = live_count_;
  if (options_.window_seconds > 0) {
    state.ring.reserve(ring_count_);
    for (size_t i = 0; i < ring_count_; ++i) {
      const RingEntry& e = ring_[(ring_head_ + i) & (ring_.size() - 1)];
      state.ring.push_back({e.start_seconds, e.from, e.to});
    }
  } else {
    state.pairs.reserve(pair_trips_.size());
    for (const auto& [key, pair_state] : pair_trips_) {
      state.pairs.emplace_back(key, pair_state.trips);
    }
    std::sort(state.pairs.begin(), state.pairs.end());
    state.day = day_;
    state.hour = hour_;
    state.endpoint_count = endpoint_count_;
  }
  return state;
}

Status SlidingWindowGraph::RestoreState(const WindowGraphState& state) {
  const auto n = static_cast<int64_t>(options_.station_count);
  *this = SlidingWindowGraph(WindowGraphOptions(options_));
  if (options_.window_seconds > 0) {
    // Re-apply the live events: the counters are exactly the sum of
    // their deltas (integral arithmetic, so bit-identical to the run
    // that built them), and the ring regains the day/hour fields from
    // calendar math on the start times.
    int64_t prev = INT64_MIN;
    for (const WindowGraphState::RingEvent& e : state.ring) {
      if (e.start_seconds < prev) {
        return Status::DataLoss(
            "checkpointed window ring is not in start-time order");
      }
      prev = e.start_seconds;
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
        return Status::DataLoss(
            "checkpointed window ring holds an out-of-range station");
      }
      const CivilTime start(e.start_seconds);
      RingEntry entry;
      entry.start_seconds = e.start_seconds;
      entry.from = e.from;
      entry.to = e.to;
      entry.day = static_cast<uint8_t>(start.weekday());
      entry.hour = static_cast<uint8_t>(start.hour());
      ApplyDelta(entry, +1);
      PushRing(entry);
      ++live_count_;
    }
  } else {
    if (state.day.size() != options_.station_count ||
        state.hour.size() != options_.station_count ||
        state.endpoint_count.size() != options_.station_count) {
      return Status::DataLoss(
          "checkpointed window profiles do not cover the station universe");
    }
    for (const auto& [key, trips] : state.pairs) {
      const auto u = static_cast<int32_t>(key >> 32);
      const auto v = static_cast<int32_t>(key & 0xFFFFFFFFu);
      if (u < 0 || u >= n || v < u || v >= n || trips <= 0 ||
          trips > std::numeric_limits<int32_t>::max()) {
        // The trips bound matters: PairState::trips is int32_t, so a
        // corrupt (or malicious) checkpoint holding e.g. 2^32 + 1 would
        // otherwise restore silently as 1 trip.
        return Status::DataLoss(
            "checkpointed window pair map holds an invalid entry");
      }
      pair_trips_[key] = PairState{static_cast<int32_t>(trips), 0};
    }
    day_ = state.day;
    hour_ = state.hour;
    endpoint_count_ = state.endpoint_count;
    live_count_ = state.live_count;
  }
  if (live_count_ != state.live_count) {
    return Status::DataLoss(
        "checkpointed window live_count does not match its ring");
  }
  watermark_ = CivilTime(state.watermark_seconds);
  last_event_seconds_ = state.last_event_seconds;
  ingested_count_ = state.ingested_count;
  delta_desync_count_ = state.delta_desync_count;
  sorted_pairs_dirty_ = true;
  return Status::OK();
}

void SlidingWindowGraph::RebuildSortedPairs() const {
  sorted_pairs_.clear();
  sorted_pairs_.reserve(pair_trips_.size());
  for (const auto& [key, trips] : pair_trips_) sorted_pairs_.push_back(key);
  std::sort(sorted_pairs_.begin(), sorted_pairs_.end());
  sorted_pairs_dirty_ = false;
}

}  // namespace bikegraph::stream
