#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/wal.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {

/// \brief A crash-consistent freeze of a StreamEngine: every component's
/// logical state plus the WAL sequence number it covers. Recovery loads
/// the newest valid checkpoint and replays the WAL records with sequence
/// numbers greater than `wal_seq`; the result is bit-identical to the
/// uninterrupted run (locked by tests/stream_durability_test.cc).
struct EngineCheckpoint {
  /// Sequence number of the last WAL record applied to this state
  /// (0 = none: the state predates every record).
  uint64_t wal_seq = 0;

  // Config fingerprint: the fields that shape the serialized state.
  // Recover() refuses a checkpoint whose fingerprint disagrees with the
  // engine config it was handed — restoring a 7-day window's ring into
  // a 1-hour engine would be silent nonsense.
  uint64_t station_count = 0;
  int64_t window_seconds = 0;
  int64_t max_lateness_seconds = 0;
  uint8_t late_policy = 0;
  uint8_t suppress_duplicates = 0;

  uint8_t flushed = 0;
  /// True when the published snapshot was current (nothing dirty) at
  /// checkpoint time: recovery then rebuilds and republishes it at its
  /// original epoch, so readers and the delta-freeze baseline resume
  /// seamlessly. False: recovery leaves the publisher empty and the
  /// next freeze takes the full path.
  uint8_t snapshot_clean = 0;
  uint64_t publisher_epoch = 0;
  /// Bounds of the published snapshot's window (meaningful only when
  /// `snapshot_clean`): the publish may predate later no-change
  /// watermark advances, so the rebuilt snapshot must carry the bounds
  /// of the original publish, not of the checkpointed watermark.
  int64_t published_window_start_seconds = 0;
  int64_t published_window_end_seconds = 0;

  uint64_t delta_freeze_count = 0;
  uint64_t full_freeze_count = 0;
  /// The engine's desync watermark (see StreamEngine::Snapshot's
  /// desync-forces-full-freeze rule).
  uint64_t desyncs_published = 0;

  ReorderBufferState reorder;
  WindowGraphState window;
  TrackerState tracker;

  /// Sharding extension (appended to the payload, after the blocks
  /// above, so a single-shard checkpoint's prefix is unchanged).
  /// `shard_count` joins the config fingerprint: Recover() refuses a
  /// checkpoint whose shard layout disagrees with the engine's, because
  /// per-shard state cannot be re-partitioned on load.
  uint64_t shard_count = 1;
  /// Per-shard applied-command counters (the shards' private sequence
  /// spaces; size == shard_count). Shard 0's reorder/window state lives
  /// in the legacy `reorder`/`window` fields above.
  std::vector<uint64_t> shard_seqs;
  /// Reorder + window state for shards 1..shard_count-1, in shard
  /// order (size == shard_count - 1; empty for a single-shard engine).
  struct ShardComponents {
    ReorderBufferState reorder;
    WindowGraphState window;
  };
  std::vector<ShardComponents> extra_shards;
};

/// \brief Serializes a checkpoint to its on-disk payload (no framing).
/// Deterministic: two equal states serialize to equal bytes, which is
/// what the recovery lock tests compare.
std::string SerializeCheckpoint(const EngineCheckpoint& checkpoint);

/// \brief Inverse of SerializeCheckpoint; DataLoss on malformed bytes.
[[nodiscard]] Result<EngineCheckpoint> ParseCheckpoint(
    const std::string& bytes);

/// \brief Writes `checkpoint` under `directory` crash-consistently:
/// serialize to `ckpt-<wal_seq>.ckpt.tmp`, fsync, rename over the final
/// name, fsync the directory. A crash at any instant leaves either the
/// previous checkpoint set intact or the new file complete — never a
/// half-written `.ckpt`.
/// All I/O goes through `env` (nullptr = IoEnv::Default()); a failed
/// commit cleans up its `.tmp` and never disturbs the previous
/// checkpoint, so the caller may keep running and retry later.
[[nodiscard]] Status WriteCheckpoint(const std::string& directory,
                                     const EngineCheckpoint& checkpoint,
                                     IoEnv* env = nullptr);

/// \brief What LoadNewestCheckpoint found.
struct CheckpointLoadResult {
  bool found = false;
  EngineCheckpoint checkpoint;
  std::string path;
  /// Newer checkpoint files that failed validation (bad magic, size, or
  /// CRC — e.g. torn by bit rot; rename atomicity prevents torn writes)
  /// and were skipped in favour of an older valid one.
  uint64_t skipped = 0;
};

/// \brief Loads the newest valid checkpoint under `directory`, skipping
/// (and counting) corrupt ones. Stray `.tmp` files from a crash mid-
/// checkpoint are deleted. `found == false` (not an error) when the
/// directory holds no usable checkpoint.
[[nodiscard]] Result<CheckpointLoadResult> LoadNewestCheckpoint(
    const std::string& directory, IoEnv* env = nullptr);

/// \brief Deletes all but the newest `keep` checkpoint files.
/// `oldest_kept_seq` (optional) receives the `wal_seq` of the oldest
/// surviving checkpoint (0 when none) — the prune-through bound for
/// PruneWalSegments, so the WAL always retains every record any kept
/// checkpoint might need.
[[nodiscard]] Status PruneCheckpoints(const std::string& directory,
                                      size_t keep,
                                      uint64_t* oldest_kept_seq = nullptr,
                                      IoEnv* env = nullptr);

}  // namespace bikegraph::stream
