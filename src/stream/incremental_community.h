#pragma once

#include <cstdint>
#include <optional>

#include "core/result.h"
#include "community/detector.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::stream {

/// \brief When to abandon a warm-started refresh and re-detect from
/// scratch. Thresholds compare the warm result against the previous
/// window's published result — the portfolio framing: keep both refresh
/// strategies and pick per window.
struct RefreshPolicy {
  /// Escalate when NMI(previous partition, warm partition) falls below
  /// this: the community structure moved too far for the seed to be
  /// trusted as a basin of attraction.
  double min_nmi = 0.70;
  /// Escalate when the warm result's modularity drops more than this
  /// below the previous window's modularity (warm starts can only get
  /// stuck in the seed's local optimum; a full run is the way out).
  double max_modularity_drop = 0.02;
  /// Force a full re-detect every N refreshes regardless of drift
  /// (0 = never). This is the escape hatch from a degraded seed basin:
  /// seeded Louvain can merge but never *split* the seed's communities,
  /// so a stream whose structure splits between windows can drift
  /// slowly enough that neither threshold above ever fires while every
  /// window publishes a stale merged partition. A bounded default caps
  /// that staleness at N windows.
  int full_refresh_interval = 16;
};

/// \brief What one refresh did, and the drift it measured.
struct RefreshOutcome {
  /// The partition to publish for this window (warm or escalated-full).
  community::CommunityResult result;
  /// True when the *published* result came from a warm-started run (can
  /// stay true under escalation if the cold run scored worse).
  bool warm_started = false;
  /// True when policy escalated to a full re-detect; the better-scoring
  /// of the warm and cold runs is published (ties go to the cold run —
  /// the portfolio pick).
  bool escalated = false;
  /// NMI between the previous window's partition and `result.partition`;
  /// 1.0 when there was no comparable previous partition.
  double nmi_drift = 1.0;
  /// Refreshes performed so far, this one included.
  uint64_t refresh_count = 0;
};

/// \brief An IncrementalCommunityTracker's complete state, for
/// checkpointing: the remembered seed partition and the counters that
/// phase the full_refresh_interval cadence.
struct TrackerState {
  uint64_t refresh_count = 0;
  uint64_t escalation_count = 0;
  double previous_modularity = 0.0;
  std::optional<community::Partition> previous_partition;
};

/// \brief Warm-start community refresh across consecutive window
/// snapshots.
///
/// The tracker remembers the previous window's partition and modularity.
/// Each `Refresh` seeds the configured algorithm with the previous
/// partition (`CommunityOptions::initial_partition` — supported by the
/// Louvain and label-propagation backends; algorithms without warm-start
/// support always take the cold path, reported as `warm_started = false`
/// and never escalated), measures NMI drift between the consecutive
/// partitions, and escalates to a full re-detect when the RefreshPolicy
/// says the warm result is no longer trustworthy. The first refresh, and
/// any refresh after the station universe changes size, is always a full
/// detect.
class IncrementalCommunityTracker {
 public:
  explicit IncrementalCommunityTracker(RefreshPolicy policy = {})
      : policy_(policy) {}

  /// Refreshes the community structure for `graph` using `spec`. The
  /// spec's own `initial_partition` is ignored — the tracker manages the
  /// seed.
  Result<RefreshOutcome> Refresh(const graphdb::WeightedGraph& graph,
                                 const community::DetectSpec& spec);

  /// Drops the remembered partition and zeroes the refresh/escalation
  /// counters: the next Refresh runs cold and the full_refresh_interval
  /// cadence restarts from it, exactly as on a freshly constructed
  /// tracker.
  void Reset();

  const RefreshPolicy& policy() const { return policy_; }
  /// Previous accepted partition (empty before the first refresh).
  const std::optional<community::Partition>& previous_partition() const {
    return previous_partition_;
  }
  uint64_t refresh_count() const { return refresh_count_; }
  uint64_t escalation_count() const { return escalation_count_; }

  /// Copies out the tracker's state (checkpointing).
  TrackerState ExportState() const {
    return TrackerState{refresh_count_, escalation_count_,
                        previous_modularity_, previous_partition_};
  }

  /// Replaces the tracker's state (recovery): the next Refresh seeds
  /// from the restored partition and continues the restored
  /// full_refresh_interval phase, exactly as the uninterrupted run
  /// would have.
  void RestoreState(TrackerState state) {
    refresh_count_ = state.refresh_count;
    escalation_count_ = state.escalation_count;
    previous_modularity_ = state.previous_modularity;
    previous_partition_ = std::move(state.previous_partition);
  }

 private:
  RefreshPolicy policy_;
  std::optional<community::Partition> previous_partition_;
  double previous_modularity_ = 0.0;
  uint64_t refresh_count_ = 0;
  uint64_t escalation_count_ = 0;
};

}  // namespace bikegraph::stream
