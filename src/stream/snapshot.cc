#include "stream/snapshot.h"

namespace bikegraph::stream {

namespace {

/// Sum of `count` copies of `w`, added one at a time. The batch builder
/// accumulates each trip's weight individually, so a snapshot that wants
/// bit-identical weights must round the same way — `count * w` is not the
/// same double once count * w needs more than one rounding step.
double RepeatedSum(double w, int64_t count) {
  double total = 0.0;
  for (int64_t i = 0; i < count; ++i) total += w;
  return total;
}

}  // namespace

std::shared_ptr<const geo::GridIndex> BuildFrozenStationIndex(
    const std::vector<geo::LatLon>& station_positions) {
  if (station_positions.empty()) return nullptr;
  auto index = std::make_shared<geo::GridIndex>();
  for (size_t s = 0; s < station_positions.size(); ++s) {
    index->Add(static_cast<int64_t>(s), station_positions[s]);
  }
  index->Freeze();
  return index;
}

Result<WindowSnapshot> FreezeSnapshot(
    const SlidingWindowGraph& window,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index) {
  if (projection.similarity_floor < 0.0 || projection.similarity_floor > 1.0) {
    return Status::InvalidArgument("similarity_floor must be in [0, 1]");
  }
  // The snapshot contract is "immutable, share freely across threads";
  // an unfrozen index would lazily mutate under const queries, so the
  // frozen invariant is enforced here rather than left to convention.
  if (station_index != nullptr && !station_index->frozen()) {
    return Status::InvalidArgument(
        "station_index must be frozen (see GridIndex::Freeze)");
  }

  WindowSnapshot snap;
  snap.window_start = window.window_start();
  snap.window_end = window.watermark();
  snap.trip_count = window.trip_count();
  snap.projection = projection;
  snap.profiles = window.Profiles();

  graphdb::WeightedGraphBuilder builder(window.station_count());
  builder.Reserve(window.pair_count());
  Status status = Status::OK();
  const bool temporal =
      projection.granularity != analysis::TemporalGranularity::kNull;
  window.ForEachPair([&](int32_t u, int32_t v, int64_t trips) {
    if (!status.ok()) return;
    double w = static_cast<double>(trips);
    if (temporal) {
      w = RepeatedSum(
          analysis::PerTripWeight(snap.profiles, static_cast<size_t>(u),
                                  static_cast<size_t>(v), projection),
          trips);
    }
    status = builder.AddEdge(u, v, w);
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  snap.graph = builder.Build();
  snap.station_index = std::move(station_index);
  return snap;
}

std::shared_ptr<const WindowSnapshot> SnapshotPublisher::Publish(
    WindowSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.epoch = ++epoch_;
  current_ = std::make_shared<const WindowSnapshot>(std::move(snapshot));
  return current_;
}

std::shared_ptr<const WindowSnapshot> SnapshotPublisher::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t SnapshotPublisher::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

}  // namespace bikegraph::stream
