#include "stream/snapshot.h"

#include "core/checked_cast.h"

namespace bikegraph::stream {

namespace {

/// Sum of `count` copies of `w`, added one at a time. The batch builder
/// accumulates each trip's weight individually, so a snapshot that wants
/// bit-identical weights must round the same way — `count * w` is not the
/// same double once count * w needs more than one rounding step.
double RepeatedSum(double w, int64_t count) {
  double total = 0.0;
  for (int64_t i = 0; i < count; ++i) total += w;
  return total;
}

/// The one per-pair edge weight formula both freeze paths share — the
/// delta path's bit-identity to the full path holds by construction,
/// not by keeping two copies in sync. Trip count for kNull; otherwise
/// the batch builder's repeated per-trip sum.
double PairWeight(const analysis::StationProfiles& profiles, int32_t u,
                  int32_t v, const analysis::TemporalGraphOptions& projection,
                  int64_t trips) {
  if (projection.granularity == analysis::TemporalGranularity::kNull) {
    return static_cast<double>(trips);
  }
  return RepeatedSum(
      analysis::PerTripWeight(profiles, static_cast<size_t>(u),
                              static_cast<size_t>(v), projection),
      trips);
}

/// Input validation shared by both freeze paths.
Status ValidateFreezeInputs(const analysis::TemporalGraphOptions& projection,
                            const geo::GridIndex* station_index) {
  if (projection.similarity_floor < 0.0 || projection.similarity_floor > 1.0) {
    return Status::InvalidArgument("similarity_floor must be in [0, 1]");
  }
  // The snapshot contract is "immutable, share freely across threads";
  // an unfrozen index would lazily mutate under const queries, so the
  // frozen invariant is enforced here rather than left to convention.
  if (station_index != nullptr && !station_index->frozen()) {
    return Status::InvalidArgument(
        "station_index must be frozen (see GridIndex::Freeze)");
  }
  return Status::OK();
}

/// The freeze paths are templates over the window type: a single
/// `SlidingWindowGraph` or the `ShardedWindowView` merge over N of them
/// (stream/shard.h). Both expose the same read surface, and the float
/// arithmetic runs over the same merged-integer inputs in the same
/// sorted-pair order, so the sharded freeze is bit-identical to the
/// single-writer freeze by construction — not by a second copy of the
/// formulas kept in sync.
template <typename Window>
Result<WindowSnapshot> FreezeSnapshotImpl(
    const Window& window,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index) {
  BIKEGRAPH_RETURN_NOT_OK(
      ValidateFreezeInputs(projection, station_index.get()));

  WindowSnapshot snap;
  snap.window_start = window.window_start();
  snap.window_end = window.watermark();
  snap.trip_count = window.trip_count();
  snap.projection = projection;
  snap.profiles = window.Profiles();

  graphdb::WeightedGraphBuilder builder(window.station_count());
  builder.Reserve(window.pair_count());
  Status status = Status::OK();
  window.ForEachPair([&](int32_t u, int32_t v, int64_t trips) {
    if (!status.ok()) return;
    status = builder.AddEdge(
        u, v, PairWeight(snap.profiles, u, v, projection, trips));
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  snap.graph = builder.Build();
  snap.station_index = std::move(station_index);
  return snap;
}

template <typename Window>
Result<WindowSnapshot> FreezeSnapshotDeltaImpl(
    const Window& window, const WindowSnapshot& previous,
    const WindowDirtySet& changes,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index,
    const SnapshotDeltaPolicy& policy, bool* used_delta) {
  if (used_delta != nullptr) *used_delta = false;
  const size_t n = window.station_count();
  const bool temporal =
      projection.granularity != analysis::TemporalGranularity::kNull;
  bool delta_applicable = policy.enabled && changes.complete &&
                          previous.graph.node_count() == n &&
                          previous.profiles.day.size() == n &&
                          previous.profiles.hour.size() == n &&
                          previous.projection.granularity ==
                              projection.granularity &&
                          previous.projection.similarity_floor ==
                              projection.similarity_floor &&
                          previous.projection.contrast == projection.contrast;
  if (delta_applicable) {
    // Patched-edge estimate: every dirty pair, plus (temporal only —
    // profile changes reweight whole rows) the previous edges incident
    // to each profile-dirty station.
    size_t affected = changes.pairs.size();
    if (temporal) {
      for (int32_t s : changes.stations) {
        affected += previous.graph.degree(s) + 1;  // +1: the self-loop
      }
    }
    const size_t base_edges =
        previous.graph.edge_count() + previous.graph.self_loop_count() + 1;
    if (static_cast<double>(affected) >
        policy.max_dirty_fraction * static_cast<double>(base_edges)) {
      delta_applicable = false;
    }
  }
  if (!delta_applicable) {
    return FreezeSnapshotImpl(window, projection, std::move(station_index));
  }
  BIKEGRAPH_RETURN_NOT_OK(
      ValidateFreezeInputs(projection, station_index.get()));

  WindowSnapshot snap;
  snap.window_start = window.window_start();
  snap.window_end = window.watermark();
  snap.trip_count = window.trip_count();
  snap.projection = projection;

  // Profiles: copy-on-write — block-copy the previous epoch's arrays,
  // re-derive only the profile-dirty stations from the live counters.
  snap.profiles = previous.profiles;
  for (int32_t s : changes.stations) {
    const auto& day = window.DayCounts(s);
    const auto& hour = window.HourCounts(s);
    for (size_t d = 0; d < 7; ++d) {
      snap.profiles.day[AsIndex(s)][d] = static_cast<double>(day[d]);
    }
    for (size_t h = 0; h < 24; ++h) {
      snap.profiles.hour[AsIndex(s)][h] = static_cast<double>(hour[h]);
    }
  }

  // Edge updates: absolute new weights for every dirty pair (absence =
  // removal), recomputed with the shared PairWeight formula so a patched
  // edge is bit-identical to its rebuilt counterpart.
  const auto weight_of = [&](int32_t u, int32_t v, int64_t trips) {
    return PairWeight(snap.profiles, u, v, projection, trips);
  };
  std::vector<graphdb::WeightedGraphPatcher::EdgeUpdate> updates;
  updates.reserve(changes.pairs.size());
  for (uint64_t key : changes.pairs) {
    const auto u = static_cast<int32_t>(key >> 32);
    const auto v = static_cast<int32_t>(key & 0xFFFFFFFFu);
    const int64_t trips = window.TripsBetween(u, v);
    updates.push_back({u, v, trips == 0 ? 0.0 : weight_of(u, v, trips),
                       trips == 0});
  }
  if (temporal) {
    // A dirty profile reweights every surviving edge at that station,
    // not just the pairs whose trip count moved. Pairs covered twice
    // (both endpoints dirty, or also trip-dirty) are deduplicated by
    // the patcher; the recomputed weights agree bit for bit.
    for (int32_t s : changes.stations) {
      for (const auto& nb : previous.graph.neighbors(s)) {
        const int64_t trips = window.TripsBetween(s, nb.node);
        updates.push_back(
            {s, nb.node, trips == 0 ? 0.0 : weight_of(s, nb.node, trips),
             trips == 0});
      }
      const int64_t self_trips = window.TripsBetween(s, s);
      // lint: float-eq-ok: a station with no self trips has an
      // exactly-0.0 self weight by construction; this detects a
      // stale nonzero entry that must be patched away.
      if (self_trips > 0 || previous.graph.self_weight(s) != 0.0) {
        updates.push_back({s, s,
                           self_trips == 0 ? 0.0 : weight_of(s, s, self_trips),
                           self_trips == 0});
      }
    }
  }
  BIKEGRAPH_ASSIGN_OR_RETURN(
      snap.graph,
      graphdb::WeightedGraphPatcher::Apply(previous.graph,
                                           std::move(updates)));
  snap.station_index = std::move(station_index);
  if (used_delta != nullptr) *used_delta = true;
  return snap;
}

}  // namespace

std::shared_ptr<const geo::GridIndex> BuildFrozenStationIndex(
    const std::vector<geo::LatLon>& station_positions) {
  if (station_positions.empty()) return nullptr;
  auto index = std::make_shared<geo::GridIndex>();
  for (size_t s = 0; s < station_positions.size(); ++s) {
    index->Add(static_cast<int64_t>(s), station_positions[s]);
  }
  index->Freeze();
  return index;
}

Result<WindowSnapshot> FreezeSnapshot(
    const SlidingWindowGraph& window,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index) {
  return FreezeSnapshotImpl(window, projection, std::move(station_index));
}

Result<WindowSnapshot> FreezeSnapshot(
    const ShardedWindowView& window,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index) {
  return FreezeSnapshotImpl(window, projection, std::move(station_index));
}

Result<WindowSnapshot> FreezeSnapshotDelta(
    const SlidingWindowGraph& window, const WindowSnapshot& previous,
    const WindowDirtySet& changes,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index,
    const SnapshotDeltaPolicy& policy, bool* used_delta) {
  return FreezeSnapshotDeltaImpl(window, previous, changes, projection,
                                 std::move(station_index), policy,
                                 used_delta);
}

Result<WindowSnapshot> FreezeSnapshotDelta(
    const ShardedWindowView& window, const WindowSnapshot& previous,
    const WindowDirtySet& changes,
    const analysis::TemporalGraphOptions& projection,
    std::shared_ptr<const geo::GridIndex> station_index,
    const SnapshotDeltaPolicy& policy, bool* used_delta) {
  return FreezeSnapshotDeltaImpl(window, previous, changes, projection,
                                 std::move(station_index), policy,
                                 used_delta);
}

std::shared_ptr<const WindowSnapshot> SnapshotPublisher::Publish(
    WindowSnapshot snapshot) {
  // Single-writer: the unsynchronized read-modify-write of epoch_ is safe
  // because only the publishing thread calls Publish/RestoreEpoch.
  const uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  snapshot.epoch = next;
  auto published =
      std::make_shared<const WindowSnapshot>(std::move(snapshot));
  // Snapshot first, counter second: a reader that observes epoch() == N
  // is guaranteed Current() already returns epoch N (or newer) — the
  // release stores pair with the acquire loads in the readers.
  current_.store(published, std::memory_order_release);
  epoch_.store(next, std::memory_order_release);
  return published;
}

void SnapshotPublisher::RestoreEpoch(uint64_t epoch) {
  current_.store(nullptr, std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
}

}  // namespace bikegraph::stream
