// Fleet rebalancing planner — operationalises the paper's conclusion that
// "bikes could be moved from Communities 2, 4, and 6 to Communities 1, 3,
// and 7 each Friday night to prepare for the shift in demand over the
// weekend". Detects GDay communities, classifies their weekly demand
// patterns, computes net weekday->weekend demand shifts, and prints a
// Friday-night transfer plan plus per-community flow imbalances.
//
//   $ ./build/examples/fleet_rebalancing

#include <cstdio>
#include <iostream>

#include "analysis/experiment.h"
#include "metrics/centrality.h"
#include "viz/ascii_table.h"

#include "core/checked_cast.h"

using namespace bikegraph;

int main() {
  auto result = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status() << "\n";
    return 1;
  }
  const auto& r = result.ValueOrDie();
  const auto& net = r.pipeline.final_network;
  const auto& partition = r.gday.detection.partition;

  auto day_shares = analysis::CommunityDayShares(net, partition);
  if (!day_shares.ok()) {
    std::cerr << day_shares.status() << "\n";
    return 1;
  }
  const auto& stats = r.gday.stats;

  // Demand-shift score: weekend share minus weekday share, weighted by the
  // community's trip volume — positive means the community needs bikes at
  // the weekend.
  struct Row {
    size_t id;
    double weekend_shift;  // extra trips/day needed at the weekend
    int64_t volume;
    int64_t net_inflow;  // in - out (chronic imbalance)
    analysis::DayPattern pattern;
  };
  std::vector<Row> rows;
  for (size_t c = 0; c < day_shares->size(); ++c) {
    const auto& shares = (*day_shares)[c];
    double weekday = 0.0, weekend = 0.0;
    for (int d = 0; d < 5; ++d) weekday += shares[AsIndex(d)];
    weekend = shares[5] + shares[6];
    // Normalise to per-day rates before differencing.
    const double shift = weekend / 2.0 - weekday / 5.0;
    const int64_t volume = stats.rows[c].within + stats.rows[c].out;
    // Per-day trip rate over the ~625-day study window.
    const double daily_rate = 7.0 * static_cast<double>(volume) / 625.0;
    rows.push_back({c + 1, shift * daily_rate, volume,
                    stats.rows[c].in - stats.rows[c].out,
                    analysis::ClassifyDayPattern(shares)});
  }

  viz::AsciiTable t({"Community", "Total trips", "Weekend demand shift",
                     "Chronic net inflow", "Pattern"});
  for (const auto& row : rows) {
    const char* pattern =
        row.pattern == analysis::DayPattern::kWeekdayCommute ? "commute"
        : row.pattern == analysis::DayPattern::kWeekendLeisure ? "leisure"
                                                               : "flat";
    char shift[24];
    std::snprintf(shift, sizeof(shift), "%+.1f trips/day", row.weekend_shift);
    t.AddRow({std::to_string(row.id), std::to_string(row.volume), shift,
              std::to_string(row.net_inflow), pattern});
  }
  std::printf("GDay community demand profile:\n%s\n", t.ToString().c_str());

  // Friday-night plan: donors = largest negative shift, receivers = largest
  // positive shift; transfer sized by the smaller of the two.
  std::vector<const Row*> donors, receivers;
  for (const auto& row : rows) {
    (row.weekend_shift < 0 ? donors : receivers).push_back(&row);
  }
  std::sort(donors.begin(), donors.end(), [](const Row* a, const Row* b) {
    return a->weekend_shift < b->weekend_shift;
  });
  std::sort(receivers.begin(), receivers.end(), [](const Row* a, const Row* b) {
    return a->weekend_shift > b->weekend_shift;
  });

  std::printf("Friday-night rebalancing plan (paper §V-C2):\n");
  size_t d = 0, g = 0;
  double donor_budget = 0, receiver_need = 0;
  while (d < donors.size() && g < receivers.size()) {
    if (donor_budget <= 0) donor_budget = -donors[d]->weekend_shift;
    if (receiver_need <= 0) receiver_need = receivers[g]->weekend_shift;
    // ~1 bike per extra weekend trip/day (95 bikes serve ~100 trips/day
    // at the paper's scale).
    const double moved = std::min(donor_budget, receiver_need);
    const int bikes = std::max(1, static_cast<int>(moved + 0.5));
    std::printf("  move ~%2d bikes: community %zu -> community %zu\n", bikes,
                donors[d]->id, receivers[g]->id);
    donor_budget -= moved;
    receiver_need -= moved;
    if (donor_budget <= 0) ++d;
    if (receiver_need <= 0) ++g;
  }

  // Station-level drill-down: the most central stations of the busiest
  // receiver community are the natural drop points.
  if (!receivers.empty()) {
    const size_t target = receivers[0]->id - 1;
    std::printf("\nDrop points in community %zu (top strength stations):\n",
                target + 1);
    std::vector<std::pair<double, size_t>> strengths;
    for (size_t s = 0; s < net.stations.size(); ++s) {
      if (static_cast<size_t>(partition.assignment[s]) != target) continue;
      strengths.push_back({r.gday.graph.strength(static_cast<int32_t>(s)), s});
    }
    std::sort(strengths.rbegin(), strengths.rend());
    for (size_t i = 0; i < std::min<size_t>(5, strengths.size()); ++i) {
      const auto& st = net.stations[strengths[i].second];
      std::printf("  %-40s (%.5f, %.5f)%s\n", st.name.c_str(), st.position.lat,
                  st.position.lon, st.pre_existing ? "" : "  [new]");
    }
  }
  return 0;
}
