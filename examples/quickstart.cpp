// Quickstart: run the paper's full methodology end-to-end on the synthetic
// Moby dataset and print the headline numbers of every table.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API: generate (or load) a
// dataset, run the expansion pipeline (clean → cluster → Algorithm 1 →
// reassign), then detect communities at the three temporal granularities.

#include <cstdio>
#include <iostream>

#include "analysis/experiment.h"
#include "core/string_util.h"
#include "viz/ascii_table.h"

using namespace bikegraph;

int main() {
  analysis::ExperimentConfig config;  // calibrated defaults (see DESIGN.md)

  auto result_or = analysis::RunPaperExperiment(config);
  if (!result_or.ok()) {
    std::cerr << "experiment failed: " << result_or.status() << "\n";
    return 1;
  }
  const analysis::ExperimentResult& r = result_or.ValueOrDie();
  const analysis::PaperExpectations paper;

  // ---- Table I: dataset overview ----------------------------------------
  const auto& rep = r.pipeline.cleaning_report;
  viz::AsciiTable t1({"Measure", "Paper (orig→clean)", "Ours (orig→clean)"});
  t1.AddRow({"#stations", "95 → 92",
             std::to_string(rep.before.station_count) + " → " +
                 std::to_string(rep.after.station_count)});
  t1.AddRow({"#rental", "62,324 → 61,872",
             FormatWithCommas(static_cast<int64_t>(rep.before.rental_count)) +
                 " → " +
                 FormatWithCommas(static_cast<int64_t>(rep.after.rental_count))});
  t1.AddRow({"#location", "14,239 → 14,156",
             FormatWithCommas(static_cast<int64_t>(rep.before.location_count)) +
                 " → " +
                 FormatWithCommas(
                     static_cast<int64_t>(rep.after.location_count))});
  std::cout << "Table I — dataset overview\n" << t1.ToString() << "\n";

  // ---- Table II: candidate graph ----------------------------------------
  const auto& cand = r.pipeline.candidate_network;
  viz::AsciiTable t2({"Measure", "Paper", "Ours"});
  t2.AddRow({"#nodes", "1,172",
             FormatWithCommas(static_cast<int64_t>(cand.candidates.size()))});
  t2.AddRow({"#candidates (non-station)", "1,080",
             FormatWithCommas(static_cast<int64_t>(cand.free_count()))});
  t2.AddRow({"#trips", "61,872",
             FormatWithCommas(static_cast<int64_t>(cand.graph.EdgeCount()))});
  std::cout << "Table II — candidate graph\n" << t2.ToString() << "\n";

  // ---- Table III: selected graph ----------------------------------------
  const auto& net = r.pipeline.final_network;
  const auto stats = net.ComputeStats();
  viz::AsciiTable t3({"Class", "Stations (paper)", "Stations (ours)",
                      "Trips from (ours)", "Trips to (ours)"});
  t3.AddRow({"Pre-existing", "92", std::to_string(net.pre_existing_count),
             FormatWithCommas(stats.pre_existing.trips_from),
             FormatWithCommas(stats.pre_existing.trips_to)});
  t3.AddRow({"Selected", "146", std::to_string(net.selected_count()),
             FormatWithCommas(stats.selected.trips_from),
             FormatWithCommas(stats.selected.trips_to)});
  std::cout << "Table III — selected graph\n" << t3.ToString() << "\n";

  // ---- Tables IV-VI: community detection --------------------------------
  viz::AsciiTable t4({"Graph", "Communities (paper)", "Communities (ours)",
                      "Modularity (paper)", "Modularity (ours)",
                      "Self-contained (ours)"});
  auto add_row = [&](const char* name, const analysis::CommunityExperiment& e,
                     size_t paper_k, double paper_q) {
    char q[16], sc[16];
    std::snprintf(q, sizeof(q), "%.2f", e.detection.modularity);
    std::snprintf(sc, sizeof(sc), "%.0f%%",
                  100.0 * e.stats.SelfContainedFraction());
    t4.AddRow({name, std::to_string(paper_k),
               std::to_string(e.detection.partition.CommunityCount()),
               FormatDouble(paper_q, 2), q, sc});
  };
  add_row("GBasic", r.gbasic, paper.gbasic_communities, paper.gbasic_modularity);
  add_row("GDay", r.gday, paper.gday_communities, paper.gday_modularity);
  add_row("GHour", r.ghour, paper.ghour_communities, paper.ghour_modularity);
  std::cout << "Tables IV-VI — community detection\n" << t4.ToString() << "\n";

  std::cout << "Reassigned locations: " << net.reassigned_locations
            << ", suppression rounds: " << r.pipeline.selection.suppression_rounds
            << ", degree threshold: " << r.pipeline.selection.degree_threshold
            << "\n";
  return 0;
}
