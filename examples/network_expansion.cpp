// Network expansion study: the paper's headline use case, end to end and
// step by step. Loads (or generates) a dockless trip dataset, cleans it,
// clusters the dockless locations, runs the station ranking & selection
// algorithm, and writes the planning artefacts an operator would hand to
// the facilities team: a ranked list of new station sites plus GeoJSON maps.
//
//   $ ./build/examples/network_expansion [locations.csv rentals.csv]
//
// Without arguments the calibrated synthetic Moby dataset is used; with
// arguments a user-supplied dataset in the documented CSV schema is loaded.

#include <cstdio>
#include <iostream>

#include "core/logging.h"
#include "core/string_util.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "viz/ascii_table.h"
#include "viz/map_export.h"

#include "core/checked_cast.h"

using namespace bikegraph;

int main(int argc, char** argv) {
  Logger::SetLevel(LogLevel::kInfo);

  // 1. Acquire the dataset.
  data::Dataset raw;
  if (argc == 3) {
    auto loaded = data::Dataset::ReadCsv(argv[1], argv[2]);
    if (!loaded.ok()) {
      std::cerr << "failed to load dataset: " << loaded.status() << "\n";
      return 1;
    }
    raw = std::move(loaded).ValueOrDie();
    std::printf("loaded %zu locations, %zu rentals from CSV\n",
                raw.locations().size(), raw.rentals().size());
  } else {
    auto generated = data::GenerateSyntheticMoby(data::SyntheticConfig{});
    if (!generated.ok()) {
      std::cerr << "generation failed: " << generated.status() << "\n";
      return 1;
    }
    raw = std::move(generated).ValueOrDie();
    std::printf("generated synthetic Moby dataset: %zu locations, %zu rentals\n",
                raw.locations().size(), raw.rentals().size());
  }

  // 2. Run the expansion pipeline (clean -> cluster -> select -> reassign).
  auto result = expansion::RunExpansionPipeline(raw);
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.status() << "\n";
    return 1;
  }
  const auto& pipeline = result.ValueOrDie();
  std::printf("\n%s\n", pipeline.cleaning_report.ToString().c_str());
  std::printf("candidate clusters: %zu (+ %zu fixed stations)\n",
              pipeline.candidate_network.free_count(),
              pipeline.candidate_network.fixed_count);

  // 3. The deliverable: a ranked list of proposed station sites.
  const auto& sel = pipeline.selection;
  const auto& cands = pipeline.candidate_network.candidates;
  viz::AsciiTable t({"Rank", "Lat", "Lon", "Degree (trips)", "Locations merged"});
  const size_t show = std::min<size_t>(15, sel.selected.size());
  for (size_t rank = 0; rank < show; ++rank) {
    const auto& cand = cands[AsIndex(sel.selected[rank])];
    t.AddRow({std::to_string(rank + 1), FormatDouble(cand.centroid.lat, 5),
              FormatDouble(cand.centroid.lon, 5), std::to_string(cand.degree()),
              std::to_string(cand.location_ids.size())});
  }
  std::printf("\nTop %zu of %zu proposed new stations (degree-ranked):\n%s",
              show, sel.selected.size(), t.ToString().c_str());
  std::printf("degree threshold (weakest fixed station): %lld\n",
              static_cast<long long>(sel.degree_threshold));

  // 4. Map artefacts for planners.
  (void)viz::WriteCandidateMap(pipeline.candidate_network,
                               "expansion_candidates.geojson");
  (void)viz::WriteSelectedMap(pipeline.final_network,
                              "expansion_selected.geojson");
  (void)viz::WriteDot(pipeline.final_network, "expansion_network.dot",
                      /*min_weight=*/100.0);
  std::printf("\nwrote expansion_candidates.geojson, "
              "expansion_selected.geojson, expansion_network.dot\n");
  return 0;
}
