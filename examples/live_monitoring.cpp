// Live monitoring: replay one synthetic day through the streaming engine
// at configurable speed and watch the rolling community structure.
//
//   $ ./build/example_live_monitoring            # ~5s compressed replay
//   $ ./build/example_live_monitoring 0          # as fast as possible
//   $ ./build/example_live_monitoring 86400      # real day per wall second
//   $ ./build/example_live_monitoring 0 0        # strictly ordered feed
//
// The pipeline runs once in batch mode to fix the station universe (the
// paper's expanded network), then a day of cleaned rentals streams
// through a 6-hour sliding window. The feed is realistically untidy: each
// trip is reported up to `shuffle` seconds (second argument, default 15
// minutes) after it started, so arrivals are out of start-time order and
// the engine's reorder buffer re-sorts them (too-late events are dropped
// and counted, redelivered rental ids suppressed). Every hour the engine
// refreshes the Louvain communities — warm-started from the previous
// window, escalating to a full re-detect when the partition drifts — and
// prints one row of the rolling dashboard: community count, modularity,
// NMI drift, refresh mode.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/civil_time.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "stream/engine.h"
#include "stream/replay.h"

using namespace bikegraph;

int main(int argc, char** argv) {
  // Event-time seconds replayed per wall-clock second (0 = no pacing).
  double speed = 86400.0 / 5.0;
  if (argc > 1) speed = std::atof(argv[1]);
  // Arrival jitter in seconds (0 = ordered feed).
  int64_t shuffle_seconds = 15 * 60;
  if (argc > 2) shuffle_seconds = std::atoll(argv[2]);

  // ---- Batch bootstrap: dataset -> expansion pipeline ------------------
  data::SyntheticConfig synth;
  auto raw = data::GenerateSyntheticMoby(synth);
  if (!raw.ok()) {
    std::cerr << "generation failed: " << raw.status() << "\n";
    return 1;
  }
  auto pipeline = expansion::RunExpansionPipeline(*raw);
  if (!pipeline.ok()) {
    std::cerr << "pipeline failed: " << pipeline.status() << "\n";
    return 1;
  }
  const expansion::FinalNetwork& net = pipeline->final_network;

  // One summer Monday of cleaned rentals becomes the day's event stream.
  const CivilTime day_start = CivilTime::FromCalendar(2021, 6, 14).ValueOrDie();
  const CivilTime day_end = day_start.AddDays(1);
  std::vector<data::RentalRecord> day_rentals;
  for (const data::RentalRecord& r : pipeline->cleaned.rentals()) {
    if (r.start_time >= day_start && r.start_time < day_end) {
      day_rentals.push_back(r);
    }
  }
  data::Dataset day_set(pipeline->cleaned.locations(), day_rentals);

  // ---- Streaming side --------------------------------------------------
  stream::StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = 6 * 3600;  // rolling 6-hour window
  // Absorb the feed's report lag; a live dashboard drops (and counts)
  // anything later than that rather than stalling.
  config.max_lateness_seconds = shuffle_seconds;
  config.late_policy = stream::LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  config.station_positions.reserve(net.stations.size());
  for (const auto& st : net.stations) {
    config.station_positions.push_back(st.position);
  }
  stream::StreamEngine engine(config);

  stream::ReplayOptions replay_options;
  replay_options.speed = speed;
  replay_options.shuffle_seconds = shuffle_seconds;
  stream::ReplaySource replay =
      stream::ReplaySource::FromFinalNetwork(day_set, net, replay_options);

  std::printf("replaying %zu trips of %s across %zu stations "
              "(6h window, hourly refresh, speed %.0fx, report jitter "
              "<= %llds)\n\n",
              replay.events().size(), day_start.ToString().c_str(),
              net.stations.size(), speed,
              static_cast<long long>(shuffle_seconds));
  std::printf("%-8s %6s %6s %11s %10s %9s %s\n", "window", "trips", "comms",
              "modularity", "NMI-drift", "refresh", "ms");

  int64_t next_refresh =
      day_start.seconds_since_epoch() + config.window_seconds;
  auto refresh_and_print = [&](CivilTime now) {
    auto outcome = engine.DetectCurrent();
    if (!outcome.ok()) {
      std::cerr << "refresh failed: " << outcome.status() << "\n";
      return;
    }
    const auto snapshot = engine.LatestSnapshot();
    const char* mode = outcome->escalated
                           ? "full*"
                           : (outcome->warm_started ? "warm" : "full");
    std::printf("%02d:%02d    %6zu %6zu %11.3f %10.3f %9s %.1f\n", now.hour(),
                now.minute(), snapshot->trip_count,
                outcome->result.partition.CommunityCount(),
                outcome->result.modularity, outcome->nmi_drift, mode,
                outcome->result.wall_time_ms);
  };

  while (auto event = replay.Next()) {
    if (event->start_time.seconds_since_epoch() >= next_refresh) {
      refresh_and_print(event->start_time);
      // Catch up over quiet gaps: one refresh per dashboard row, not a
      // burst of back-to-back refreshes on near-identical windows.
      while (event->start_time.seconds_since_epoch() >= next_refresh) {
        next_refresh += 3600;
      }
    }
    if (auto status = engine.Ingest(*event); !status.ok()) {
      std::cerr << "ingest failed: " << status << "\n";
      return 1;
    }
  }
  // End of feed: release the reorder buffer's tail, then close the day.
  (void)engine.Advance(day_end);
  if (auto status = engine.Flush(); !status.ok()) {
    std::cerr << "flush failed: " << status << "\n";
    return 1;
  }
  refresh_and_print(day_end);

  std::printf("\n%zu trips ingested, %zu expired from the window, "
              "%llu refreshes (%llu escalated to full re-detect)\n",
              engine.ingested_count(), engine.window().expired_count(),
              static_cast<unsigned long long>(engine.tracker().refresh_count()),
              static_cast<unsigned long long>(
                  engine.tracker().escalation_count()));
  std::printf("reorder buffer: %llu events re-sorted, %llu dropped as "
              "too late, %llu duplicates suppressed\n",
              static_cast<unsigned long long>(engine.reordered_count()),
              static_cast<unsigned long long>(engine.late_dropped_count()),
              static_cast<unsigned long long>(engine.duplicate_count()));
  std::printf("snapshots: %llu delta-frozen (copy-on-write), %llu full "
              "rebuilds\n",
              static_cast<unsigned long long>(engine.delta_freeze_count()),
              static_cast<unsigned long long>(engine.full_freeze_count()));
  return 0;
}
