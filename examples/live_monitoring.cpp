// Live monitoring: replay one synthetic day through the streaming engine
// at configurable speed and watch the rolling community structure.
//
//   $ ./build/example_live_monitoring            # ~5s compressed replay
//   $ ./build/example_live_monitoring 0          # as fast as possible
//   $ ./build/example_live_monitoring 86400      # real day per wall second
//   $ ./build/example_live_monitoring 0 0        # strictly ordered feed
//   $ ./build/example_live_monitoring 0 900 --durable /tmp/moby-wal
//                                                # WAL + checkpoint/restore
//   $ ./build/example_live_monitoring 0 900 --serve 4
//                                                # 4 concurrent query readers
//   $ ./build/example_live_monitoring 0 900 --shards 4
//                                                # 4-shard ingestion engine
//
// With --shards N the engine ingests through N shard workers behind
// SPSC rings (docs/STREAMING.md, "Sharded ingestion") — the dashboard,
// snapshots, and final stats are bit-identical to the single-writer
// run for any N; what changes is who does the windowing work. Composes
// with --durable (the shard count is part of the durable fingerprint,
// so recovery rebuilds the same N-shard engine) and with --serve.
//
// With --serve N the example becomes a two-sided serving demo: N reader
// threads run mixed query batches (query/workload.h) against a
// QueryService over the live engine while the replay keeps ingesting —
// the concurrent-serving architecture docs/SERVING.md describes. When
// the feed ends (and, combined with --durable, before the simulated
// crash tears the engine down) the pool is drained and a per-epoch
// serving report prints batch p50/p99 and overall queries/s alongside
// the dashboard. Composing --serve with --durable shows the honest
// crash story: the serving layer dies with its engine and re-attaches
// to the recovered one as a second serving segment.
//
// With --durable <dir> the engine write-ahead-logs every call under
// <dir> (cleared first — it is a scratch directory) and checkpoints
// every couple of thousand events. At 60% of the feed the process
// simulates a crash: the live engine is torn down mid-stream, rebuilt
// with StreamEngine::Recover() — newest checkpoint plus WAL tail
// replay — and the dashboard resumes where it left off, printing what
// recovery actually did.
//
// The pipeline runs once in batch mode to fix the station universe (the
// paper's expanded network), then a day of cleaned rentals streams
// through a 6-hour sliding window. The feed is realistically untidy: each
// trip is reported up to `shuffle` seconds (second argument, default 15
// minutes) after it started, so arrivals are out of start-time order and
// the engine's reorder buffer re-sorts them (too-late events are dropped
// and counted, redelivered rental ids suppressed). Every hour the engine
// refreshes the Louvain communities — warm-started from the previous
// window, escalating to a full re-detect when the partition drifts — and
// prints one row of the rolling dashboard: community count, modularity,
// NMI drift, refresh mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <string>
// lint: thread-ok: the --serve mode races N query-reader threads against
// the live replay writer — the concurrent-serving demo docs/SERVING.md
// walks through.
#include <thread>
#include <vector>

#include "core/civil_time.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "query/service.h"
#include "query/workload.h"
#include "stream/engine.h"
#include "stream/replay.h"

using namespace bikegraph;

namespace {

double PercentileNs(const std::vector<int64_t>& sorted_samples, double pct) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      static_cast<double>(sorted_samples.size() - 1) * pct / 100.0);
  return static_cast<double>(sorted_samples[rank]);
}

/// N reader threads serving mixed query batches against a live engine.
/// The pool binds the engine's publisher at construction and must be
/// drained (StopAndReport) before that engine is destroyed — which is
/// exactly what the --durable crash composition demonstrates.
class ServingPool {
 public:
  ServingPool(const stream::StreamEngine& engine, size_t readers,
              size_t station_count)
      : service_(engine), locals_(readers),
        started_(std::chrono::steady_clock::now()) {
    threads_.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      threads_.emplace_back([this, r, station_count] { Run(r, station_count); });
    }
  }

  ~ServingPool() { StopAndReport("serving"); }

  /// Drains the readers and prints the per-epoch serving report. Safe to
  /// call more than once; only the first call reports.
  void StopAndReport(const char* label) {
    if (reported_) return;
    reported_ = true;
    done_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - started_).count();

    std::map<uint64_t, std::vector<int64_t>> by_epoch;
    uint64_t queries = 0, slot_errors = 0, pin_failures = 0;
    for (const Local& local : locals_) {
      for (const auto& [epoch, samples] : local.by_epoch) {
        auto& cell = by_epoch[epoch];
        cell.insert(cell.end(), samples.begin(), samples.end());
      }
      queries += local.queries;
      slot_errors += local.slot_errors;
      pin_failures += local.pin_failures;
    }
    std::printf("\n-- %s report: %zu readers, %llu queries in %.1fs "
                "(%.0f queries/s, %llu slot errors, %llu pin failures) --\n",
                label, threads_.size(),
                static_cast<unsigned long long>(queries), elapsed,
                elapsed > 0.0 ? static_cast<double>(queries) / elapsed : 0.0,
                static_cast<unsigned long long>(slot_errors),
                static_cast<unsigned long long>(pin_failures));
    std::printf("%-8s %8s %12s %12s\n", "epoch", "batches", "p50(us)",
                "p99(us)");
    for (auto& [epoch, samples] : by_epoch) {
      std::sort(samples.begin(), samples.end());
      std::printf("%-8llu %8zu %12.1f %12.1f\n",
                  static_cast<unsigned long long>(epoch), samples.size(),
                  PercentileNs(samples, 50.0) / 1e3,
                  PercentileNs(samples, 99.0) / 1e3);
    }
    const query::QueryServiceStats stats = service_.stats();
    std::printf("memo: community %llu computed / %llu reused, top-pairs "
                "%llu computed / %llu reused\n",
                static_cast<unsigned long long>(stats.community_memo_misses),
                static_cast<unsigned long long>(stats.community_memo_hits),
                static_cast<unsigned long long>(stats.pairs_memo_misses),
                static_cast<unsigned long long>(stats.pairs_memo_hits));
  }

 private:
  struct Local {
    std::map<uint64_t, std::vector<int64_t>> by_epoch;  // batch ns by epoch
    uint64_t queries = 0;
    uint64_t slot_errors = 0;
    uint64_t pin_failures = 0;
  };

  void Run(size_t r, size_t station_count) {
    std::mt19937_64 rng(1000003 * (r + 1));
    query::WorkloadSpec spec;
    spec.station_count = station_count;
    spec.community_count = 2;
    spec.batch_size = 8;
    Local& local = locals_[r];
    // do-while: every reader serves at least one batch even if the
    // writer drains the whole feed before this thread first runs.
    do {
      const auto batch = query::MakeWorkloadBatch(spec, rng);
      const auto t0 = std::chrono::steady_clock::now();
      auto outcome = service_.ExecuteBatch(batch);
      const auto t1 = std::chrono::steady_clock::now();
      if (!outcome.ok()) {
        // Nothing published yet: back off briefly and keep polling.
        ++local.pin_failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      local.by_epoch[outcome->epoch].push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      local.queries += outcome->answers.size();
      for (const auto& answer : outcome->answers) {
        if (!answer.ok()) ++local.slot_errors;
      }
    } while (!done_.load(std::memory_order_acquire));
  }

  query::QueryService service_;
  std::atomic<bool> done_{false};
  bool reported_ = false;
  std::vector<Local> locals_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string durable_dir;
  size_t serve_readers = 0;
  size_t shard_count = 1;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--durable needs a directory argument\n";
        return 2;
      }
      durable_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--serve needs a reader count\n";
        return 2;
      }
      serve_readers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--shards needs a shard count\n";
        return 2;
      }
      shard_count = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Event-time seconds replayed per wall-clock second (0 = no pacing).
  double speed = 86400.0 / 5.0;
  if (positional.size() > 0) speed = std::atof(positional[0]);
  // Arrival jitter in seconds (0 = ordered feed).
  int64_t shuffle_seconds = 15 * 60;
  if (positional.size() > 1) shuffle_seconds = std::atoll(positional[1]);

  // ---- Batch bootstrap: dataset -> expansion pipeline ------------------
  data::SyntheticConfig synth;
  auto raw = data::GenerateSyntheticMoby(synth);
  if (!raw.ok()) {
    std::cerr << "generation failed: " << raw.status() << "\n";
    return 1;
  }
  auto pipeline = expansion::RunExpansionPipeline(*raw);
  if (!pipeline.ok()) {
    std::cerr << "pipeline failed: " << pipeline.status() << "\n";
    return 1;
  }
  const expansion::FinalNetwork& net = pipeline->final_network;

  // One summer Monday of cleaned rentals becomes the day's event stream.
  const CivilTime day_start = CivilTime::FromCalendar(2021, 6, 14).ValueOrDie();
  const CivilTime day_end = day_start.AddDays(1);
  std::vector<data::RentalRecord> day_rentals;
  for (const data::RentalRecord& r : pipeline->cleaned.rentals()) {
    if (r.start_time >= day_start && r.start_time < day_end) {
      day_rentals.push_back(r);
    }
  }
  data::Dataset day_set(pipeline->cleaned.locations(), day_rentals);

  // ---- Streaming side --------------------------------------------------
  stream::StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = 6 * 3600;  // rolling 6-hour window
  // Absorb the feed's report lag; a live dashboard drops (and counts)
  // anything later than that rather than stalling.
  config.max_lateness_seconds = shuffle_seconds;
  config.late_policy = stream::LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  config.shard_count = shard_count;
  config.station_positions.reserve(net.stations.size());
  for (const auto& st : net.stations) {
    config.station_positions.push_back(st.position);
  }
  if (!durable_dir.empty()) {
    // Scratch durability directory for the demo: clear any previous run
    // so the fresh engine accepts it.
    std::error_code ec;
    std::filesystem::remove_all(durable_dir, ec);
    config.durability.enabled = true;
    config.durability.directory = durable_dir;
  }
  auto engine = std::make_unique<stream::StreamEngine>(config);

  stream::ReplayOptions replay_options;
  replay_options.speed = speed;
  replay_options.shuffle_seconds = shuffle_seconds;
  stream::ReplaySource replay =
      stream::ReplaySource::FromFinalNetwork(day_set, net, replay_options);

  std::printf("replaying %zu trips of %s across %zu stations "
              "(6h window, hourly refresh, speed %.0fx, report jitter "
              "<= %llds, %zu ingest shard%s)\n\n",
              replay.events().size(), day_start.ToString().c_str(),
              net.stations.size(), speed,
              static_cast<long long>(shuffle_seconds),
              engine->shard_count(),
              engine->shard_count() == 1 ? "" : "s");
  std::printf("%-8s %6s %6s %11s %10s %9s %s\n", "window", "trips", "comms",
              "modularity", "NMI-drift", "refresh", "ms");

  int64_t next_refresh =
      day_start.seconds_since_epoch() + config.window_seconds;
  auto refresh_and_print = [&](CivilTime now) {
    auto outcome = engine->DetectCurrent();
    if (!outcome.ok()) {
      std::cerr << "refresh failed: " << outcome.status() << "\n";
      return;
    }
    const auto snapshot = engine->LatestSnapshot();
    const char* mode = outcome->escalated
                           ? "full*"
                           : (outcome->warm_started ? "warm" : "full");
    std::printf("%02d:%02d    %6zu %6zu %11.3f %10.3f %9s %.1f\n", now.hour(),
                now.minute(), snapshot->trip_count,
                outcome->result.partition.CommunityCount(),
                outcome->result.modularity, outcome->nmi_drift, mode,
                outcome->result.wall_time_ms);
  };

  // Durable mode: checkpoint a few times before the simulated crash at
  // 60% of the feed, so recovery demonstrates checkpoint + WAL tail
  // replay rather than a pure log replay.
  size_t fed = 0;
  const size_t restart_at =
      durable_dir.empty() ? 0 : replay.events().size() * 3 / 5;
  const size_t checkpoint_every = restart_at == 0 ? 0 : restart_at / 4 + 1;

  // Query serving side (--serve N): readers pin epochs off the engine's
  // publisher while this thread keeps ingesting. The pool must not
  // outlive its engine, so the crash path below drains it first.
  std::unique_ptr<ServingPool> pool;
  if (serve_readers > 0) {
    pool = std::make_unique<ServingPool>(*engine, serve_readers,
                                         net.stations.size());
  }

  while (auto event = replay.Next()) {
    if (event->start_time.seconds_since_epoch() >= next_refresh) {
      refresh_and_print(event->start_time);
      // Catch up over quiet gaps: one refresh per dashboard row, not a
      // burst of back-to-back refreshes on near-identical windows.
      while (event->start_time.seconds_since_epoch() >= next_refresh) {
        next_refresh += 3600;
      }
    }
    if (auto status = engine->Ingest(*event); !status.ok()) {
      std::cerr << "ingest failed: " << status << "\n";
      return 1;
    }
    ++fed;
    if (checkpoint_every != 0 && fed % checkpoint_every == 0) {
      if (auto status = engine->Checkpoint(); !status.ok()) {
        std::cerr << "checkpoint failed: " << status << "\n";
        return 1;
      }
    }
    if (fed == restart_at) {
      std::printf("-- simulated restart after %zu of %zu events --\n", fed,
                  replay.events().size());
      if (pool) {
        // The serving layer dies with its engine: drain the readers and
        // report the pre-crash segment before tearing the publisher down.
        pool->StopAndReport("pre-crash serving");
        pool.reset();
      }
      engine.reset();  // the "crash": the live engine is gone mid-stream
      stream::StreamEngine::RecoveryStats rs;
      auto recovered = stream::StreamEngine::Recover(config, &rs);
      if (!recovered.ok()) {
        std::cerr << "recovery failed: " << recovered.status() << "\n";
        return 1;
      }
      engine = std::move(*recovered);
      std::printf("-- recovered: checkpoint %s (seq %llu, %llu skipped), "
                  "%llu WAL records replayed (%llu errors), resumed at "
                  "seq %llu, %llu torn bytes dropped --\n",
                  rs.used_checkpoint ? "used" : "none",
                  static_cast<unsigned long long>(rs.checkpoint_seq),
                  static_cast<unsigned long long>(rs.skipped_checkpoints),
                  static_cast<unsigned long long>(rs.replayed_records),
                  static_cast<unsigned long long>(rs.replay_errors),
                  static_cast<unsigned long long>(rs.recovered_seq),
                  static_cast<unsigned long long>(rs.truncated_bytes));
      if (serve_readers > 0) {
        // Second serving segment: re-attach the readers to the recovered
        // engine's publisher and keep serving to the end of the feed.
        pool = std::make_unique<ServingPool>(*engine, serve_readers,
                                             net.stations.size());
      }
    }
  }
  // End of feed: release the reorder buffer's tail, then close the day.
  // In durable mode Advance write-ahead-logs the watermark move, so a
  // dropped Status here is a silently lost WAL record: the recovered
  // engine would re-deliver already-released events.
  if (auto status = engine->Advance(day_end); !status.ok()) {
    std::cerr << "final advance failed: " << status << "\n";
    return 1;
  }
  if (auto status = engine->Flush(); !status.ok()) {
    std::cerr << "flush failed: " << status << "\n";
    return 1;
  }
  refresh_and_print(day_end);
  if (pool) {
    pool->StopAndReport(durable_dir.empty() ? "serving"
                                            : "post-recovery serving");
    pool.reset();
  }

  // Engine-level counters, not engine->window().*: with --shards N the
  // per-shard windows each hold a slice and only the sums are the
  // dashboard numbers.
  std::printf("\n%zu trips ingested, %zu expired from the window, "
              "%llu refreshes (%llu escalated to full re-detect)\n",
              engine->ingested_count(), engine->expired_count(),
              static_cast<unsigned long long>(engine->tracker().refresh_count()),
              static_cast<unsigned long long>(
                  engine->tracker().escalation_count()));
  std::printf("reorder buffer: %llu events re-sorted, %llu dropped as "
              "too late, %llu duplicates suppressed\n",
              static_cast<unsigned long long>(engine->reordered_count()),
              static_cast<unsigned long long>(engine->late_dropped_count()),
              static_cast<unsigned long long>(engine->duplicate_count()));
  std::printf("snapshots: %llu delta-frozen (copy-on-write), %llu full "
              "rebuilds\n",
              static_cast<unsigned long long>(engine->delta_freeze_count()),
              static_cast<unsigned long long>(engine->full_freeze_count()));
  if (!durable_dir.empty()) {
    // Durability health: with the demo's clean local disk these stay 0,
    // but on a real deployment nonzero retries with degraded=no means
    // the FaultPolicy absorbed transient I/O trouble — and degraded=YES
    // means the log stopped and Recover() will refuse the directory
    // until the operator accepts the loss (docs/DURABILITY.md).
    std::printf("durability: seq %llu, %llu retries (%llu calls recovered "
                "transiently), %llu ENOSPC prunes, degraded=%s\n",
                static_cast<unsigned long long>(engine->wal_seq()),
                static_cast<unsigned long long>(engine->wal_retry_count()),
                static_cast<unsigned long long>(
                    engine->wal_transient_recovered_count()),
                static_cast<unsigned long long>(
                    engine->wal_enospc_prune_count()),
                engine->degraded() ? "YES" : "no");
  }
  return 0;
}
