// Live monitoring: replay one synthetic day through the streaming engine
// at configurable speed and watch the rolling community structure.
//
//   $ ./build/example_live_monitoring            # ~5s compressed replay
//   $ ./build/example_live_monitoring 0          # as fast as possible
//   $ ./build/example_live_monitoring 86400      # real day per wall second
//   $ ./build/example_live_monitoring 0 0        # strictly ordered feed
//   $ ./build/example_live_monitoring 0 900 --durable /tmp/moby-wal
//                                                # WAL + checkpoint/restore
//
// With --durable <dir> the engine write-ahead-logs every call under
// <dir> (cleared first — it is a scratch directory) and checkpoints
// every couple of thousand events. At 60% of the feed the process
// simulates a crash: the live engine is torn down mid-stream, rebuilt
// with StreamEngine::Recover() — newest checkpoint plus WAL tail
// replay — and the dashboard resumes where it left off, printing what
// recovery actually did.
//
// The pipeline runs once in batch mode to fix the station universe (the
// paper's expanded network), then a day of cleaned rentals streams
// through a 6-hour sliding window. The feed is realistically untidy: each
// trip is reported up to `shuffle` seconds (second argument, default 15
// minutes) after it started, so arrivals are out of start-time order and
// the engine's reorder buffer re-sorts them (too-late events are dropped
// and counted, redelivered rental ids suppressed). Every hour the engine
// refreshes the Louvain communities — warm-started from the previous
// window, escalating to a full re-detect when the partition drifts — and
// prints one row of the rolling dashboard: community count, modularity,
// NMI drift, refresh mode.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/civil_time.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "stream/engine.h"
#include "stream/replay.h"

using namespace bikegraph;

int main(int argc, char** argv) {
  std::string durable_dir;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--durable needs a directory argument\n";
        return 2;
      }
      durable_dir = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Event-time seconds replayed per wall-clock second (0 = no pacing).
  double speed = 86400.0 / 5.0;
  if (positional.size() > 0) speed = std::atof(positional[0]);
  // Arrival jitter in seconds (0 = ordered feed).
  int64_t shuffle_seconds = 15 * 60;
  if (positional.size() > 1) shuffle_seconds = std::atoll(positional[1]);

  // ---- Batch bootstrap: dataset -> expansion pipeline ------------------
  data::SyntheticConfig synth;
  auto raw = data::GenerateSyntheticMoby(synth);
  if (!raw.ok()) {
    std::cerr << "generation failed: " << raw.status() << "\n";
    return 1;
  }
  auto pipeline = expansion::RunExpansionPipeline(*raw);
  if (!pipeline.ok()) {
    std::cerr << "pipeline failed: " << pipeline.status() << "\n";
    return 1;
  }
  const expansion::FinalNetwork& net = pipeline->final_network;

  // One summer Monday of cleaned rentals becomes the day's event stream.
  const CivilTime day_start = CivilTime::FromCalendar(2021, 6, 14).ValueOrDie();
  const CivilTime day_end = day_start.AddDays(1);
  std::vector<data::RentalRecord> day_rentals;
  for (const data::RentalRecord& r : pipeline->cleaned.rentals()) {
    if (r.start_time >= day_start && r.start_time < day_end) {
      day_rentals.push_back(r);
    }
  }
  data::Dataset day_set(pipeline->cleaned.locations(), day_rentals);

  // ---- Streaming side --------------------------------------------------
  stream::StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = 6 * 3600;  // rolling 6-hour window
  // Absorb the feed's report lag; a live dashboard drops (and counts)
  // anything later than that rather than stalling.
  config.max_lateness_seconds = shuffle_seconds;
  config.late_policy = stream::LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  config.station_positions.reserve(net.stations.size());
  for (const auto& st : net.stations) {
    config.station_positions.push_back(st.position);
  }
  if (!durable_dir.empty()) {
    // Scratch durability directory for the demo: clear any previous run
    // so the fresh engine accepts it.
    std::error_code ec;
    std::filesystem::remove_all(durable_dir, ec);
    config.durability.enabled = true;
    config.durability.directory = durable_dir;
  }
  auto engine = std::make_unique<stream::StreamEngine>(config);

  stream::ReplayOptions replay_options;
  replay_options.speed = speed;
  replay_options.shuffle_seconds = shuffle_seconds;
  stream::ReplaySource replay =
      stream::ReplaySource::FromFinalNetwork(day_set, net, replay_options);

  std::printf("replaying %zu trips of %s across %zu stations "
              "(6h window, hourly refresh, speed %.0fx, report jitter "
              "<= %llds)\n\n",
              replay.events().size(), day_start.ToString().c_str(),
              net.stations.size(), speed,
              static_cast<long long>(shuffle_seconds));
  std::printf("%-8s %6s %6s %11s %10s %9s %s\n", "window", "trips", "comms",
              "modularity", "NMI-drift", "refresh", "ms");

  int64_t next_refresh =
      day_start.seconds_since_epoch() + config.window_seconds;
  auto refresh_and_print = [&](CivilTime now) {
    auto outcome = engine->DetectCurrent();
    if (!outcome.ok()) {
      std::cerr << "refresh failed: " << outcome.status() << "\n";
      return;
    }
    const auto snapshot = engine->LatestSnapshot();
    const char* mode = outcome->escalated
                           ? "full*"
                           : (outcome->warm_started ? "warm" : "full");
    std::printf("%02d:%02d    %6zu %6zu %11.3f %10.3f %9s %.1f\n", now.hour(),
                now.minute(), snapshot->trip_count,
                outcome->result.partition.CommunityCount(),
                outcome->result.modularity, outcome->nmi_drift, mode,
                outcome->result.wall_time_ms);
  };

  // Durable mode: checkpoint a few times before the simulated crash at
  // 60% of the feed, so recovery demonstrates checkpoint + WAL tail
  // replay rather than a pure log replay.
  size_t fed = 0;
  const size_t restart_at =
      durable_dir.empty() ? 0 : replay.events().size() * 3 / 5;
  const size_t checkpoint_every = restart_at == 0 ? 0 : restart_at / 4 + 1;

  while (auto event = replay.Next()) {
    if (event->start_time.seconds_since_epoch() >= next_refresh) {
      refresh_and_print(event->start_time);
      // Catch up over quiet gaps: one refresh per dashboard row, not a
      // burst of back-to-back refreshes on near-identical windows.
      while (event->start_time.seconds_since_epoch() >= next_refresh) {
        next_refresh += 3600;
      }
    }
    if (auto status = engine->Ingest(*event); !status.ok()) {
      std::cerr << "ingest failed: " << status << "\n";
      return 1;
    }
    ++fed;
    if (checkpoint_every != 0 && fed % checkpoint_every == 0) {
      if (auto status = engine->Checkpoint(); !status.ok()) {
        std::cerr << "checkpoint failed: " << status << "\n";
        return 1;
      }
    }
    if (fed == restart_at) {
      std::printf("-- simulated restart after %zu of %zu events --\n", fed,
                  replay.events().size());
      engine.reset();  // the "crash": the live engine is gone mid-stream
      stream::StreamEngine::RecoveryStats rs;
      auto recovered = stream::StreamEngine::Recover(config, &rs);
      if (!recovered.ok()) {
        std::cerr << "recovery failed: " << recovered.status() << "\n";
        return 1;
      }
      engine = std::move(*recovered);
      std::printf("-- recovered: checkpoint %s (seq %llu, %llu skipped), "
                  "%llu WAL records replayed (%llu errors), resumed at "
                  "seq %llu, %llu torn bytes dropped --\n",
                  rs.used_checkpoint ? "used" : "none",
                  static_cast<unsigned long long>(rs.checkpoint_seq),
                  static_cast<unsigned long long>(rs.skipped_checkpoints),
                  static_cast<unsigned long long>(rs.replayed_records),
                  static_cast<unsigned long long>(rs.replay_errors),
                  static_cast<unsigned long long>(rs.recovered_seq),
                  static_cast<unsigned long long>(rs.truncated_bytes));
    }
  }
  // End of feed: release the reorder buffer's tail, then close the day.
  // In durable mode Advance write-ahead-logs the watermark move, so a
  // dropped Status here is a silently lost WAL record: the recovered
  // engine would re-deliver already-released events.
  if (auto status = engine->Advance(day_end); !status.ok()) {
    std::cerr << "final advance failed: " << status << "\n";
    return 1;
  }
  if (auto status = engine->Flush(); !status.ok()) {
    std::cerr << "flush failed: " << status << "\n";
    return 1;
  }
  refresh_and_print(day_end);

  std::printf("\n%zu trips ingested, %zu expired from the window, "
              "%llu refreshes (%llu escalated to full re-detect)\n",
              engine->ingested_count(), engine->window().expired_count(),
              static_cast<unsigned long long>(engine->tracker().refresh_count()),
              static_cast<unsigned long long>(
                  engine->tracker().escalation_count()));
  std::printf("reorder buffer: %llu events re-sorted, %llu dropped as "
              "too late, %llu duplicates suppressed\n",
              static_cast<unsigned long long>(engine->reordered_count()),
              static_cast<unsigned long long>(engine->late_dropped_count()),
              static_cast<unsigned long long>(engine->duplicate_count()));
  std::printf("snapshots: %llu delta-frozen (copy-on-write), %llu full "
              "rebuilds\n",
              static_cast<unsigned long long>(engine->delta_freeze_count()),
              static_cast<unsigned long long>(engine->full_freeze_count()));
  return 0;
}
