// What-if threshold explorer — an interactive-style planning tool around
// the limitation the paper concedes: the 100 m / 250 m / 50 m thresholds
// "were not motivated by empirical evidence". Given a target number of new
// stations, searches the Rule-4 secondary distance that hits the target,
// and reports the sensitivity of the plan around the paper's defaults.
//
//   $ ./build/examples/whatif_thresholds [target_new_stations]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/string_util.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "viz/ascii_table.h"

using namespace bikegraph;

namespace {

struct Outcome {
  size_t selected;
  double new_trip_share;
};

Outcome Evaluate(const data::Dataset& raw, double secondary_m) {
  expansion::PipelineConfig config;
  config.selection.secondary_distance_m = secondary_m;
  auto r = expansion::RunExpansionPipeline(raw, config);
  if (!r.ok()) {
    std::cerr << "pipeline failed: " << r.status() << "\n";
    std::exit(1);
  }
  auto stats = r->final_network.ComputeStats();
  return {r->final_network.selected_count(),
          static_cast<double>(stats.selected.trips_from) /
              static_cast<double>(stats.total_trips)};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t target = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;

  auto raw = data::GenerateSyntheticMoby(data::SyntheticConfig{});
  if (!raw.ok()) {
    std::cerr << raw.status() << "\n";
    return 1;
  }

  // Bisection over the secondary distance: the selected count decreases
  // monotonically as the spacing requirement grows.
  double lo = 60.0, hi = 1200.0;
  Outcome at_lo = Evaluate(*raw, lo), at_hi = Evaluate(*raw, hi);
  std::printf("target: %zu new stations\n", target);
  std::printf("bracket: %.0f m -> %zu stations, %.0f m -> %zu stations\n", lo,
              at_lo.selected, hi, at_hi.selected);
  if (target > at_lo.selected || target < at_hi.selected) {
    std::printf("target outside achievable bracket; adjust Rule 3/boundary "
                "instead.\n");
    return 0;
  }
  double best_d = lo;
  Outcome best = at_lo;
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = (lo + hi) / 2.0;
    Outcome at_mid = Evaluate(*raw, mid);
    const auto gap = [&](const Outcome& o) {
      return std::llabs(static_cast<long long>(o.selected) -
                        static_cast<long long>(target));
    };
    if (gap(at_mid) < gap(best)) {
      best = at_mid;
      best_d = mid;
    }
    if (at_mid.selected > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::printf("\nrecommended Rule-4 secondary distance: ~%.0f m "
              "(yields %zu new stations, %.0f%% of trip starts)\n",
              best_d, best.selected, 100.0 * best.new_trip_share);

  // Sensitivity band around the recommendation and the paper default.
  viz::AsciiTable t({"Secondary distance (m)", "New stations",
                     "New-station trip share"});
  for (double delta : {-50.0, -25.0, 0.0, 25.0, 50.0}) {
    const double d = best_d + delta;
    if (d <= 0) continue;
    Outcome o = Evaluate(*raw, d);
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%", 100.0 * o.new_trip_share);
    t.AddRow({FormatDouble(d, 0), std::to_string(o.selected), share});
  }
  std::printf("\nsensitivity around the recommendation:\n%s",
              t.ToString().c_str());

  Outcome paper = Evaluate(*raw, 250.0);
  std::printf("\npaper default (250 m): %zu new stations, %.0f%% of trip "
              "starts.\n",
              paper.selected, 100.0 * paper.new_trip_share);
  return 0;
}
