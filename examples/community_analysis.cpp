// Community analysis at three temporal granularities — the paper's
// validation methodology as a reusable tool. Runs the configured detection
// algorithm (Louvain by default) on GBasic, GDay and GHour, compares every
// algorithm in the registry via the unified Detect() entry point, and
// exports the community maps.
//
//   $ ./build/examples/community_analysis

#include <cstdio>
#include <iostream>

#include "analysis/experiment.h"
#include "community/detector.h"
#include "viz/ascii_table.h"
#include "viz/map_export.h"

using namespace bikegraph;

int main() {
  auto result = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status() << "\n";
    return 1;
  }
  const auto& r = result.ValueOrDie();
  const auto& net = r.pipeline.final_network;

  // Granularity sweep summary (the paper's Tables IV-VI headline).
  viz::AsciiTable sweep({"Graph", "Communities", "Modularity",
                         "Self-contained", "Levels"});
  for (const auto* exp : {&r.gbasic, &r.gday, &r.ghour}) {
    const char* name = exp->granularity == analysis::TemporalGranularity::kNull
                           ? "GBasic"
                       : exp->granularity == analysis::TemporalGranularity::kDay
                           ? "GDay"
                           : "GHour";
    char q[16], sc[16];
    std::snprintf(q, sizeof(q), "%.3f", exp->detection.modularity);
    std::snprintf(sc, sizeof(sc), "%.0f%%",
                  100.0 * exp->stats.SelfContainedFraction());
    sweep.AddRow({name,
                  std::to_string(exp->detection.partition.CommunityCount()), q,
                  sc, std::to_string(exp->detection.levels)});
  }
  std::printf("Temporal granularity sweep:\n%s\n", sweep.ToString().c_str());

  // Algorithm comparison on GBasic (the paper's future-work experiment):
  // every registry entry through the one Detect() entry point.
  viz::AsciiTable algos({"Algorithm", "Communities", "Modularity", "Wall (ms)"});
  for (community::AlgorithmId id : community::ListAlgorithms()) {
    community::DetectSpec spec;
    spec.algorithm = id;
    auto run = community::Detect(r.gbasic.graph, spec);
    if (!run.ok()) continue;
    char q[16], ms[16];
    std::snprintf(q, sizeof(q), "%.3f", run->modularity);
    std::snprintf(ms, sizeof(ms), "%.1f", run->wall_time_ms);
    algos.AddRow({std::string(community::AlgorithmName(id)),
                  std::to_string(run->partition.CommunityCount()), q, ms});
  }
  std::printf("Algorithm comparison on GBasic:\n%s\n",
              algos.ToString().c_str());

  // Per-community composition of the GBasic partition.
  viz::AsciiTable comp({"Community", "Old stations", "New stations",
                        "Within trips", "Share of network"});
  const auto& stats = r.gbasic.stats;
  for (size_t c = 0; c < stats.rows.size(); ++c) {
    const auto& row = stats.rows[c];
    char share[16];
    std::snprintf(share, sizeof(share), "%.0f%%",
                  100.0 * static_cast<double>(row.within + row.out) /
                      static_cast<double>(stats.TotalTrips()));
    comp.AddRow({std::to_string(c + 1), std::to_string(row.old_stations),
                 std::to_string(row.new_stations), std::to_string(row.within),
                 share});
  }
  std::printf("GBasic community composition:\n%s\n", comp.ToString().c_str());

  (void)viz::WriteCommunityMap(net, r.gbasic.detection.partition,
                               "communities_gbasic.geojson");
  (void)viz::WriteCommunityMap(net, r.gday.detection.partition,
                               "communities_gday.geojson");
  (void)viz::WriteCommunityMap(net, r.ghour.detection.partition,
                               "communities_ghour.geojson");
  std::printf("wrote communities_{gbasic,gday,ghour}.geojson\n");
  return 0;
}
