// Community analysis at three temporal granularities — the paper's
// validation methodology as a reusable tool. Runs Louvain on GBasic, GDay
// and GHour, compares against the alternative algorithms (label
// propagation, fast-greedy, Infomap-lite), and exports the community maps.
//
//   $ ./build/examples/community_analysis

#include <cstdio>
#include <iostream>

#include "analysis/experiment.h"
#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/modularity.h"
#include "viz/ascii_table.h"
#include "viz/map_export.h"

using namespace bikegraph;

int main() {
  auto result = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status() << "\n";
    return 1;
  }
  const auto& r = result.ValueOrDie();
  const auto& net = r.pipeline.final_network;

  // Granularity sweep summary (the paper's Tables IV-VI headline).
  viz::AsciiTable sweep({"Graph", "Communities", "Modularity",
                         "Self-contained", "Levels"});
  for (const auto* exp : {&r.gbasic, &r.gday, &r.ghour}) {
    const char* name = exp->granularity == analysis::TemporalGranularity::kNull
                           ? "GBasic"
                       : exp->granularity == analysis::TemporalGranularity::kDay
                           ? "GDay"
                           : "GHour";
    char q[16], sc[16];
    std::snprintf(q, sizeof(q), "%.3f", exp->louvain.modularity);
    std::snprintf(sc, sizeof(sc), "%.0f%%",
                  100.0 * exp->stats.SelfContainedFraction());
    sweep.AddRow({name,
                  std::to_string(exp->louvain.partition.CommunityCount()), q,
                  sc, std::to_string(exp->louvain.levels)});
  }
  std::printf("Temporal granularity sweep:\n%s\n", sweep.ToString().c_str());

  // Algorithm comparison on GBasic (the paper's future-work experiment).
  viz::AsciiTable algos({"Algorithm", "Communities", "Modularity"});
  auto add = [&](const std::string& name, const community::Partition& p) {
    char q[16];
    std::snprintf(q, sizeof(q), "%.3f",
                  community::Modularity(r.gbasic.graph, p));
    algos.AddRow({name, std::to_string(p.CommunityCount()), q});
  };
  add("Louvain", r.gbasic.louvain.partition);
  if (auto lpa = community::RunLabelPropagation(r.gbasic.graph); lpa.ok()) {
    add("LabelPropagation", lpa->partition);
  }
  if (auto fg = community::RunFastGreedy(r.gbasic.graph); fg.ok()) {
    add("FastGreedy (CNM)", fg->partition);
  }
  if (auto im = community::RunInfomapLite(r.gbasic.graph); im.ok()) {
    add("Infomap-lite", im->partition);
  }
  std::printf("Algorithm comparison on GBasic:\n%s\n",
              algos.ToString().c_str());

  // Per-community composition of the GBasic partition.
  viz::AsciiTable comp({"Community", "Old stations", "New stations",
                        "Within trips", "Share of network"});
  const auto& stats = r.gbasic.stats;
  for (size_t c = 0; c < stats.rows.size(); ++c) {
    const auto& row = stats.rows[c];
    char share[16];
    std::snprintf(share, sizeof(share), "%.0f%%",
                  100.0 * static_cast<double>(row.within + row.out) /
                      static_cast<double>(stats.TotalTrips()));
    comp.AddRow({std::to_string(c + 1), std::to_string(row.old_stations),
                 std::to_string(row.new_stations), std::to_string(row.within),
                 share});
  }
  std::printf("GBasic community composition:\n%s\n", comp.ToString().c_str());

  (void)viz::WriteCommunityMap(net, r.gbasic.louvain.partition,
                               "communities_gbasic.geojson");
  (void)viz::WriteCommunityMap(net, r.gday.louvain.partition,
                               "communities_gday.geojson");
  (void)viz::WriteCommunityMap(net, r.ghour.louvain.partition,
                               "communities_ghour.geojson");
  std::printf("wrote communities_{gbasic,gday,ghour}.geojson\n");
  return 0;
}
